"""Unified concurrency IR: every plan shape as stages over buffer spans.

The runtime now produces four structurally different "plans" — a
:class:`~repro.runtime.plan.KernelPlan` level schedule replayed by
threads, a :class:`~repro.serving.batching.BatchLayout` packing many
requests' columns into one stacked operand, a
:class:`~repro.parallel.shard.ShardedPlan` splitting rows across worker
processes over shared-memory segments, and the streaming layer's
snapshot/rebuild/publish swap protocol.  Each used to carry its own
ad-hoc audit in :mod:`repro.staticcheck.hazards`; this module lowers all
of them into ONE representation so a single engine can prove them safe:

* a :class:`Buffer` is a named address space (an output matrix in rows,
  a stacked operand in columns, a shared-memory segment in bytes, a
  published slot reference) with an optional :class:`SpanPolicy`
  describing the span-ownership discipline its writers must obey;
* a :class:`Stage` is one unit of work on an execution *lane* (a thread,
  a worker process, the main thread between dispatches) with explicit
  read/write accesses — half-open ``[lo, hi)`` spans into buffers — and
  explicit happens-before edges (``after``) for barriers, joins, and
  commit visibility;
* a :class:`PlanIR` bundles the two, and :func:`analyze_ir` runs the
  engine: span-discipline audits per buffer (ownership overlap, bounds,
  coverage gaps, degenerate widths — the checks the legacy
  ``analyze_shard_plan``/``analyze_batch_layout`` performed) plus the
  happens-before race and commit-order analysis from
  :mod:`repro.staticcheck.hb` (HZ-R4xx).

:class:`FusedStage` is the forward-looking descriptor for ROADMAP item 5
(the fusion pass): an epilogue fused into a branch's replay declares the
rows it touches, and the engine proves the fusion race-free — the rows
must be owned by that branch, otherwise the fused work conflicts with
another lane and HZ-R401/R402 fire.  The fusion pass can therefore be
built on plans this module has already verified.

Everything here is symbolic: no kernel runs, no thread spawns, and
lowering a ``ShardedPlan`` only reads its bounds and segment layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.tree import VIRTUAL
from repro.staticcheck.report import AuditReport

_MAX_LISTED = 5
#: Cap on conflicting stage pairs examined per buffer — a broken plan
#: with thousands of overlaps reports the first few, not all of them.
_MAX_CONFLICTS = 64


def _fmt_spans(spans) -> str:
    spans = [(int(lo), int(hi)) for lo, hi in spans]
    listed = ", ".join(f"({lo}, {hi})" for lo, hi in spans[:_MAX_LISTED])
    more = f", … (+{len(spans) - _MAX_LISTED} more)" if len(spans) > _MAX_LISTED else ""
    return f"[{listed}{more}]"


# ---------------------------------------------------------------------------
# IR node types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpanPolicy:
    """Span-ownership discipline for one buffer's writers.

    Each field names the ``(finding code, check name)`` emitted when the
    corresponding rule is violated; ``None`` disables the rule.  The
    flags reproduce the two historical dialects exactly:

    * the *shard* dialect (``filter_invalid=True``, ``gap_mode="cursor"``)
      drops invalid spans before ordering, folds invalid bounds into the
      overlap code, and counts a trailing gap as uncovered rows;
    * the *batch* dialect (``allow_trailing=True``, ``gap_mode="adjacent"``)
      keeps every span, reports bounds separately, and treats trailing
      columns as quantisation padding (zero-filled, so not a gap).
    """

    overlap: tuple[str, str] | None = None   # two owners claim the same span
    bounds: tuple[str, str] | None = None    # lo < 0 or hi > size
    invalid: tuple[str, str] | None = None   # lo < 0 or hi < lo or hi > size
    width: tuple[str, str] | None = None     # hi - lo <= 0
    gap: tuple[str, str] | None = None       # spans do not tile [0, size)
    filter_invalid: bool = False
    allow_trailing: bool = False
    gap_mode: str = "cursor"                 # "cursor" | "adjacent"
    # Stable sort by lo only (declaration order breaks ties).  The shm
    # segment dialect compares packed arrays in pack order, so a
    # zero-byte array at the same offset as a sized one is judged by
    # which was packed first — full (lo, hi) sorting would silently
    # change those verdicts.
    sort_stable_by_lo: bool = False
    noun: str = "span"


@dataclass(frozen=True)
class Buffer:
    """One named address space stages read and write.

    ``size`` is in ``unit``s (rows, columns, bytes — the engine only does
    interval arithmetic; the unit is for messages).  ``atomic`` marks a
    single-reference slot whose read/write is atomic under the runtime
    (e.g. a published snapshot pointer swapped in one assignment): the
    race analysis does not report unordered accesses to it.  A buffer
    with ``policy.overlap`` set is governed by span ownership — overlap
    there IS the race, reported once under the policy's code, so the
    generic HB race check skips it rather than double-reporting.
    """

    name: str
    size: int | None = None
    unit: str = "bytes"
    space: str = "heap"
    atomic: bool = False
    policy: SpanPolicy | None = None


@dataclass(frozen=True)
class Access:
    """One read or write of ``spans`` (``(k, 2)`` half-open) in a buffer."""

    buffer: str
    spans: np.ndarray
    mode: str = "w"  # "r" | "w"
    label: str = ""

    def __post_init__(self):
        arr = np.asarray(self.spans, dtype=np.int64).reshape(-1, 2)
        object.__setattr__(self, "spans", arr)


@dataclass(frozen=True)
class Stage:
    """One unit of work on an execution lane.

    Stages sharing a ``lane`` execute in list order (program order is a
    happens-before edge); stages on different lanes are concurrent
    unless an ``after`` edge (barrier, join, commit visibility) orders
    them.  A ``role="commit"`` stage publishes the work of the stages in
    ``covers`` (the shard worker's EPOCH/CRC board write, the store's
    manifest rename): the engine proves every covered stage is
    happens-before the commit, else the commit is a torn publish
    (HZ-R403).
    """

    sid: str
    lane: str
    reads: tuple[Access, ...] = ()
    writes: tuple[Access, ...] = ()
    after: tuple[str, ...] = ()
    role: str = ""
    covers: tuple[str, ...] = ()
    label: str = ""


@dataclass
class PlanIR:
    """A lowered plan: buffers plus stages, ready for :func:`analyze_ir`."""

    subject: str
    buffers: dict[str, Buffer] = field(default_factory=dict)
    stages: list[Stage] = field(default_factory=list)

    def add_buffer(self, buf: Buffer) -> Buffer:
        if buf.name in self.buffers:
            raise ValueError(f"duplicate buffer {buf.name!r}")
        self.buffers[buf.name] = buf
        return buf

    def add_stage(self, stage: Stage) -> Stage:
        if any(s.sid == stage.sid for s in self.stages):
            raise ValueError(f"duplicate stage {stage.sid!r}")
        self.stages.append(stage)
        return stage

    def stage(self, sid: str) -> Stage:
        for s in self.stages:
            if s.sid == sid:
                return s
        raise KeyError(sid)

    def replace_stage(self, sid: str, **changes) -> Stage:
        """Rebuild one stage with ``changes`` (mutation-catalog helper)."""
        for i, s in enumerate(self.stages):
            if s.sid == sid:
                self.stages[i] = replace(s, **changes)
                return self.stages[i]
        raise KeyError(sid)


@dataclass(frozen=True)
class FusedStage:
    """Descriptor of an epilogue fused into the update stage (ROADMAP 5).

    ``kind`` names the fused work (``"row-scale"``, ``"activation"``,
    ``"bias"`` — the engine does not interpret it); ``branch`` selects
    the branch whose replay absorbs the epilogue (``None`` = fused after
    the join, which is always safe); ``rows`` are the rows the epilogue
    reads and writes (``None`` = exactly the branch's own rows, the
    provably safe default).  Lowering folds the accesses into the branch
    stage, so a fusion touching rows outside the branch conflicts with
    another lane and the race analysis rejects the plan.
    """

    kind: str
    branch: int | None = None
    rows: object = None


# ---------------------------------------------------------------------------
# Span helpers
# ---------------------------------------------------------------------------

def spans_of(*pairs) -> np.ndarray:
    """Build a ``(k, 2)`` span array from ``(lo, hi)`` pairs."""
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


def rows_to_spans(rows) -> np.ndarray:
    """Coalesce row indices into sorted half-open ``[lo, hi)`` spans."""
    rows = np.unique(np.asarray(rows, dtype=np.int64).ravel())
    if rows.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    breaks = np.flatnonzero(np.diff(rows) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [rows.size - 1]))
    return np.stack((rows[starts], rows[ends] + 1), axis=1)


def full_span(buf: Buffer) -> np.ndarray:
    if buf.size is None:
        raise ValueError(f"buffer {buf.name!r} has no size; cannot span it fully")
    return spans_of((0, buf.size))


# ---------------------------------------------------------------------------
# Span-discipline audit (the legacy shard/batch byte-span checks)
# ---------------------------------------------------------------------------

def _audit_span_policy(
    report: AuditReport,
    buf: Buffer,
    owned: list[tuple[int, int, str]],
) -> None:
    """Audit one buffer's write spans against its :class:`SpanPolicy`.

    ``owned`` is ``[(lo, hi, owner label), ...]``.  The rule order and
    the exact sorted-adjacent / cursor-walk semantics mirror the legacy
    analyzers verbatim so verdicts are bit-identical on their domain
    (the migration property test holds both implementations to this).
    """
    pol = buf.policy
    assert pol is not None
    if pol.sort_stable_by_lo:
        spans = sorted(((lo, hi) for lo, hi, _ in owned), key=lambda s: s[0])
    else:
        spans = sorted((lo, hi) for lo, hi, _ in owned)
    size = buf.size

    if pol.width is not None:
        code, check = pol.width
        bad_width = [(lo, hi) for lo, hi in spans if hi - lo <= 0]
        if bad_width:
            report.add(
                code,
                f"{buf.name}: {pol.noun}(s) {_fmt_spans(bad_width)} have "
                "non-positive width — the owner would receive an empty or "
                "aliasing slice",
            )
            report.failed(check)
        else:
            report.passed(check)

    invalid: list[tuple[int, int]] = []
    if pol.invalid is not None:
        invalid = [
            (lo, hi)
            for lo, hi in spans
            if lo < 0 or hi < lo or (size is not None and hi > size)
        ]
    ordered = (
        [s for s in spans if s not in invalid] if pol.filter_invalid else list(spans)
    )
    overlaps = [
        (ordered[i], ordered[i + 1])
        for i in range(len(ordered) - 1)
        if ordered[i + 1][0] < ordered[i][1]
    ]

    if pol.invalid is not None and (
        pol.overlap is None or pol.invalid[0] != pol.overlap[0]
    ):
        code, check = pol.invalid
        if invalid:
            report.add(
                code,
                f"{buf.name}: invalid {pol.noun}(s) {_fmt_spans(invalid)}",
            )
            report.failed(check)
        else:
            report.passed(check)

    if pol.overlap is not None:
        code, check = pol.overlap
        fold_invalid = pol.invalid is not None and pol.invalid[0] == code
        detail = []
        if fold_invalid and invalid:
            detail.append(f"invalid {pol.noun}s {_fmt_spans(invalid)}")
        if overlaps:
            pairs = [f"{a}∩{b}" for a, b in overlaps[:_MAX_LISTED]]
            detail.append(f"overlapping {pol.noun}s {', '.join(pairs)}")
        if detail:
            report.add(
                code,
                f"{buf.name}: " + "; ".join(detail) + " — two owners would "
                f"write the same {buf.unit} concurrently",
            )
            report.failed(check)
        else:
            report.passed(check)

    if pol.bounds is not None and size is not None:
        code, check = pol.bounds
        oob = [(lo, hi) for lo, hi in spans if lo < 0 or hi > size]
        if oob:
            report.add(
                code,
                f"{buf.name}: {pol.noun}(s) {_fmt_spans(oob)} fall outside "
                f"the {size}-{buf.unit} buffer",
            )
            report.failed(check)
        else:
            report.passed(check)

    if pol.gap is not None and size is not None:
        code, check = pol.gap
        gaps: list[tuple[int, int]] = []
        if pol.gap_mode == "adjacent":
            gaps = [
                (ordered[i][1], ordered[i + 1][0])
                for i in range(len(ordered) - 1)
                if ordered[i + 1][0] > ordered[i][1]
            ]
            if ordered and ordered[0][0] > 0:
                gaps.insert(0, (0, ordered[0][0]))
            if not pol.allow_trailing and ordered and ordered[-1][1] < size:
                gaps.append((ordered[-1][1], size))
        else:  # cursor walk (shard dialect): overlap-tolerant coverage
            cursor = 0
            for lo, hi in ordered:
                if lo > cursor:
                    gaps.append((cursor, lo))
                cursor = max(cursor, hi)
            if cursor < size:
                gaps.append((cursor, size))
        if gaps:
            report.add(
                code,
                f"{buf.name}: {buf.unit} ranges {_fmt_spans(gaps)} are owned "
                "by no writer — they would be served stale or feed recycled "
                "garbage downstream",
            )
            report.failed(check)
        else:
            report.passed(check)


# ---------------------------------------------------------------------------
# Policy presets (the two legacy dialects)
# ---------------------------------------------------------------------------

def shard_rows_policy() -> SpanPolicy:
    return SpanPolicy(
        overlap=("HZ-S102", "shards.disjoint"),
        invalid=("HZ-S102", "shards.disjoint"),
        gap=("HZ-S101", "shards.coverage"),
        filter_invalid=True,
        gap_mode="cursor",
        noun="row block",
    )


def shard_segment_policy() -> SpanPolicy:
    return SpanPolicy(
        overlap=("HZ-S103", "shards.segments"),
        sort_stable_by_lo=True,
        noun="packed array",
    )


def hybrid_rows_policy() -> SpanPolicy:
    return SpanPolicy(
        overlap=("HZ-H202", "hybrid.disjoint"),
        invalid=("HZ-H202", "hybrid.disjoint"),
        gap=("HZ-H201", "hybrid.coverage"),
        filter_invalid=True,
        gap_mode="cursor",
        noun="format block",
    )


def batch_columns_policy() -> SpanPolicy:
    return SpanPolicy(
        overlap=("HZ-X001", "batch.disjoint"),
        bounds=("HZ-X002", "batch.bounds"),
        gap=("HZ-X003", "batch.contiguous"),
        width=("HZ-X004", "batch.widths"),
        allow_trailing=True,
        gap_mode="adjacent",
        noun="member span",
    )


# ---------------------------------------------------------------------------
# Lowerings
# ---------------------------------------------------------------------------

def lower_batch_layout(layout, *, subject: str = "batch-layout") -> PlanIR:
    """Lower a stacked-operand :class:`BatchLayout` into the IR.

    One buffer (the stacked product, in columns) and one stage per
    member: the collector copies each request's operand into its column
    span, and the split step later hands the same span back — so each
    member must own its span exclusively.  Requesters are distinct lanes
    (their futures resolve independently), which is why ownership, not
    ordering, is the discipline.
    """
    ir = PlanIR(subject=subject)
    ir.add_buffer(
        Buffer(
            "stacked",
            size=int(layout.total_columns),
            unit="column",
            policy=batch_columns_policy(),
        )
    )
    for i, (off, width) in enumerate(layout.members):
        ir.add_stage(
            Stage(
                sid=f"member{i}",
                lane=f"requester{i}",
                writes=(Access("stacked", spans_of((int(off), int(off) + int(width)))),),
                label=f"member {i} columns [{off}, {off + width})",
            )
        )
    return ir


def lower_shard_plan(
    plan=None,
    *,
    bounds=None,
    n_rows: int | None = None,
    layout=None,
    subject: str = "shard-plan",
) -> PlanIR:
    """Lower a :class:`ShardedPlan` (or its raw pieces) into the IR.

    Per shard: a worker-process lane with a slice-write stage followed by
    its CRC/EPOCH board commit (``role="commit"``, covering the write —
    the commit-LAST protocol the supervisor's ``verify_shard`` relies
    on).  The output rows carry the shard ownership policy; each
    shared-memory segment becomes a byte-addressed buffer whose packed
    arrays must not alias (Property 3's no-extra-memory accounting).
    """
    if plan is not None:
        bounds = plan.bounds
        n_rows = plan.shape[0]
        layout = plan.segment_layout()
    bounds = [(int(lo), int(hi)) for lo, hi in (bounds or [])]
    ir = PlanIR(subject=subject)
    ir.add_buffer(
        Buffer("out", size=n_rows, unit="row", space="shm", policy=shard_rows_policy())
    )
    num = len(bounds)
    ir.add_buffer(Buffer("status", size=max(num, 1), unit="row", space="shm"))
    for i, (lo, hi) in enumerate(bounds):
        write = Stage(
            sid=f"shard{i}.write",
            lane=f"proc{i}",
            writes=(Access("out", spans_of((lo, hi))),),
            label=f"shard {i} writes rows [{lo}, {hi})",
        )
        ir.add_stage(write)
        ir.add_stage(
            Stage(
                sid=f"shard{i}.commit",
                lane=f"proc{i}",
                writes=(Access("status", spans_of((i, i + 1))),),
                role="commit",
                covers=(write.sid,),
                label=f"shard {i} CRC/EPOCH board commit",
            )
        )
    if layout is not None:
        by_segment: dict[str, list[dict]] = {}
        for span in layout:
            by_segment.setdefault(span["segment"], []).append(span)
        if not by_segment:
            # an empty layout still asserts "no segment aliasing": keep
            # the shards.segments verdict present, as the legacy
            # analyzer did
            ir.add_buffer(
                Buffer("shm:(none)", size=None, unit="byte", space="shm",
                       policy=shard_segment_policy())
            )
        accesses = []
        for segment, entries in sorted(by_segment.items()):
            bname = f"shm:{segment}"
            ir.add_buffer(
                Buffer(bname, size=None, unit="byte", space="shm",
                       policy=shard_segment_policy())
            )
            for e in entries:
                accesses.append(
                    Access(
                        bname,
                        spans_of((int(e["offset"]), int(e["offset"]) + int(e["nbytes"]))),
                        label=f"shard{e['shard']}.{e['array']}",
                    )
                )
        ir.add_stage(
            Stage(sid="pack", lane="main", writes=tuple(accesses),
                  label="parent packs operands into segments")
        )
    return ir


def lower_hybrid_plan(
    hybrid=None,
    *,
    blocks=None,
    n_rows: int | None = None,
    subject: str = "hybrid-plan",
) -> PlanIR:
    """Lower a :class:`~repro.autotune.hybrid.HybridPlan` into the IR.

    The hybrid executor's contract is the shard supervisor's stitch
    discipline on one thread: every block — CBM kernel or CSR row
    slice — writes exactly its ``[lo, hi)`` span of the pooled output,
    and the spans tile the matrix.  An overlap means two formats fight
    over rows (HZ-H202); a gap means rows nobody computes are served
    from recycled pool memory (HZ-H201).  Accepts either the live
    executor (``hybrid``) or a raw ``(lo, hi, fmt)`` block map.
    """
    if hybrid is not None:
        blocks = hybrid.block_map()
        n_rows = hybrid.shape[0]
    blocks = [(int(lo), int(hi), str(fmt)) for lo, hi, fmt in (blocks or [])]
    ir = PlanIR(subject=subject)
    ir.add_buffer(
        Buffer("out", size=n_rows, unit="row", policy=hybrid_rows_policy())
    )
    ir.add_buffer(Buffer("b", size=None, unit="row"))
    for i, (lo, hi, fmt) in enumerate(blocks):
        ir.add_stage(
            Stage(
                sid=f"block{i}",
                lane="main",
                reads=(Access("b", spans_of((0, max(n_rows or 0, 1))), mode="r"),),
                writes=(Access("out", spans_of((lo, hi)), label=fmt),),
                label=f"{fmt} block writes rows [{lo}, {hi})",
            )
        )
    return ir


def analyze_hybrid_plan(hybrid, decision=None, *, subject: str = "hybrid-plan"):
    """Audit a live hybrid executor, optionally against its committed map.

    Runs the span-discipline engine on the executor's actual blocks,
    then cross-checks them against the :class:`TuneDecision` block map
    the tuner committed (the one health endpoints and generation meta
    advertise).  A decision that no longer describes the executor is a
    *stale map* (HZ-H201 — operators and the re-tune hysteresis would
    reason from fiction); a block executing a different format than the
    decision routed is *mis-routed* (HZ-H203) unless it is the
    documented zero-nnz CSR fallback.
    """
    report = analyze_ir(lower_hybrid_plan(hybrid, subject=subject))
    if decision is None:
        decision = getattr(hybrid, "decision", None)
    if decision is None:
        return report
    executor = [(b.lo, b.hi, b.fmt) for b in hybrid.blocks]
    declared = [(int(lo), int(hi), str(fmt)) for lo, hi, fmt in decision.block_map()]
    if [(lo, hi) for lo, hi, _ in executor] != [(lo, hi) for lo, hi, _ in declared]:
        report.add(
            "HZ-H201",
            f"committed block map {[(lo, hi) for lo, hi, _ in declared]} does not "
            f"describe the executor's spans "
            f"{[(lo, hi) for lo, hi, _ in executor]} — stale map",
        )
        report.failed("hybrid.map_current")
        return report
    report.passed("hybrid.map_current")
    misrouted = False
    for blk, (lo, hi, fmt) in zip(hybrid.blocks, declared):
        if blk.fmt == fmt:
            continue
        if (
            fmt == "cbm"
            and blk.fmt == "csr"
            and getattr(getattr(blk, "_rows", None), "nnz", None) == 0
        ):
            continue  # documented fallback: empty blocks execute as CSR
        misrouted = True
        report.add(
            "HZ-H203",
            f"block [{lo}, {hi}) executes as {blk.fmt!r} but the decision "
            f"routed it to {fmt!r} — mis-routed block",
        )
        report.failed("hybrid.routing")
    if not misrouted:
        report.passed("hybrid.routing")
    return report


def lower_kernel_plan(
    plan,
    *,
    threaded: bool = True,
    fused: tuple = (),
    subject: str | None = None,
) -> PlanIR:
    """Lower a :class:`KernelPlan`'s execution into the IR.

    The multiply stage writes the whole product; the update stage is the
    interesting part.  Threaded replay puts each branch (§V-B) on its
    own lane, barriered after the multiply and joined before the
    finalise stage — branch independence then *is* the absence of
    HB-unordered conflicting accesses, which subsumes the ad-hoc
    ``shares_memory``-style aliasing arguments.  Sequential level
    schedules lower to one lane in level order (race-free by
    construction; intra-level fancy-index hazards stay with
    ``analyze_level_schedule``, which reasons below span granularity).

    ``fused`` takes :class:`FusedStage` descriptors (ROADMAP item 5) and
    folds their accesses into the chosen branch's stage, so an unsafe
    fusion — touching rows another lane owns — is rejected before the
    fusion pass exists.
    """
    n_rows = int(plan.shape[0])
    name = subject or f"plan-ir({plan.update})"
    ir = PlanIR(subject=name)
    ir.add_buffer(Buffer("c", size=n_rows, unit="row"))
    ir.add_buffer(Buffer("b", size=n_rows, unit="row"))
    ir.add_stage(
        Stage(
            sid="multiply",
            lane="main",
            reads=(Access("b", spans_of((0, n_rows)), mode="r"),),
            writes=(Access("c", spans_of((0, n_rows))),),
            label="delta-set product (writes every compressed row)",
        )
    )
    parent = np.asarray(plan._parent, dtype=np.int64).ravel()
    branch_sids: list[str] = []
    if threaded:
        folded: dict[int, list[FusedStage]] = {}
        for f in fused:
            if f.branch is not None:
                folded.setdefault(int(f.branch), []).append(f)
        for i, branch in enumerate(plan.branches):
            rows = np.asarray(branch, dtype=np.int64).ravel()
            in_range = rows[(rows >= 0) & (rows < n_rows)]
            parents = parent[in_range]
            parents = parents[(parents != VIRTUAL) & (parents >= 0)]
            reads = [Access("c", rows_to_spans(parents), mode="r")]
            writes = [Access("c", rows_to_spans(in_range))]
            for f in folded.get(i, ()):
                frows = in_range if f.rows is None else np.asarray(f.rows)
                fspans = rows_to_spans(frows)
                reads.append(Access("c", fspans, mode="r", label=f"fused:{f.kind}"))
                writes.append(Access("c", fspans, label=f"fused:{f.kind}"))
            sid = f"branch{i}"
            branch_sids.append(sid)
            ir.add_stage(
                Stage(
                    sid=sid,
                    lane=f"worker{i}",
                    reads=tuple(reads),
                    writes=tuple(writes),
                    after=("multiply",),
                    label=f"replay branch {i} ({rows.size} rows)",
                )
            )
    else:
        for li, (children, parents) in enumerate(plan.level_pairs):
            ps = np.asarray(parents, dtype=np.int64).ravel()
            ps = ps[(ps != VIRTUAL) & (ps >= 0)]
            sid = f"level{li}"
            branch_sids.append(sid)
            ir.add_stage(
                Stage(
                    sid=sid,
                    lane="main",
                    reads=(Access("c", rows_to_spans(ps), mode="r"),),
                    writes=(Access("c", rows_to_spans(children)),),
                    label=f"level {li} vectorised scatter",
                )
            )
    post = [f for f in fused if f.branch is None]
    post_access = tuple(
        Access("c", spans_of((0, n_rows)), label=f"fused:{f.kind}") for f in post
    )
    ir.add_stage(
        Stage(
            sid="finalize",
            lane="main",
            reads=(Access("c", spans_of((0, n_rows)), mode="r"),),
            writes=post_access,
            after=tuple(branch_sids) or ("multiply",),
            label="join + epilogue (row scaling / output hand-off)",
        )
    )
    return ir


def lower_stream_swap(*, subject: str = "stream-swap", payload_units: int = 4) -> PlanIR:
    """Lower the streaming snapshot/rebuild/publish protocol into the IR.

    Models the invariants the streaming layer relies on: generation
    payloads are fully written before the manifest commit marks them
    durable (commit-LAST, same shape as the shard board's EPOCH/CRC
    protocol), the published slot is a single atomic reference, and
    serving threads only read payload bytes *after* the publish made the
    commit visible to them.  Mutating any of these orderings produces
    HZ-R403 (torn commit) or HZ-R402 (read of an unpublished build).
    """
    ir = PlanIR(subject=subject)
    ir.add_buffer(Buffer("generation", size=payload_units, unit="payload", space="disk"))
    ir.add_buffer(Buffer("manifest", size=1, unit="marker", space="disk"))
    ir.add_buffer(Buffer("slot", size=1, unit="ref", atomic=True))
    ir.add_stage(
        Stage(
            sid="snapshot",
            lane="rebuilder",
            reads=(Access("slot", spans_of((0, 1)), mode="r"),),
            label="snapshot the live adjacency under the mutation lock",
        )
    )
    ir.add_stage(
        Stage(
            sid="build",
            lane="rebuilder",
            writes=(Access("generation", spans_of((0, payload_units))),),
            label="rebuild CBM payloads off-thread",
        )
    )
    ir.add_stage(
        Stage(
            sid="commit",
            lane="rebuilder",
            writes=(Access("manifest", spans_of((0, 1))),),
            role="commit",
            covers=("build",),
            label="manifest rename marks the generation durable",
        )
    )
    ir.add_stage(
        Stage(
            sid="publish",
            lane="rebuilder",
            writes=(Access("slot", spans_of((0, 1))),),
            label="atomic slot swap to the rebuilt snapshot",
        )
    )
    ir.add_stage(
        Stage(
            sid="serve",
            lane="server",
            reads=(
                Access("slot", spans_of((0, 1)), mode="r"),
                Access("generation", spans_of((0, payload_units)), mode="r"),
            ),
            after=("publish",),
            label="request thread reads through the published slot",
        )
    )
    return ir


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

def analyze_ir(ir: PlanIR, *, races: bool = True) -> AuditReport:
    """Prove a lowered plan safe: span discipline + happens-before.

    Runs the per-buffer :class:`SpanPolicy` audits (the legacy byte-span
    verdicts) and, with ``races=True``, the happens-before analysis from
    :mod:`repro.staticcheck.hb`: HZ-R401/R402 for conflicting accesses
    no HB path orders, HZ-R403 for commit stages that do not cover their
    payload writes.
    """
    from repro.staticcheck import hb

    report = AuditReport(subject=ir.subject)
    per_buffer: dict[str, list[tuple[int, int, str]]] = {}
    for stage in ir.stages:
        for acc in stage.writes:
            if acc.buffer not in ir.buffers:
                raise KeyError(f"stage {stage.sid!r} writes unknown buffer {acc.buffer!r}")
            for lo, hi in acc.spans:
                per_buffer.setdefault(acc.buffer, []).append(
                    (int(lo), int(hi), acc.label or stage.sid)
                )
        for acc in stage.reads:
            if acc.buffer not in ir.buffers:
                raise KeyError(f"stage {stage.sid!r} reads unknown buffer {acc.buffer!r}")
    for name, buf in ir.buffers.items():
        if buf.policy is not None:
            _audit_span_policy(report, buf, per_buffer.get(name, []))
    if races:
        report.merge(hb.analyze_hb(ir))
    return report
