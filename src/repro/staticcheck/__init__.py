"""Static invariant auditing for CBM artifacts, plans, and source contracts.

The rest of the repository proves correctness *dynamically* — by
multiplying against the CSR reference (:mod:`repro.core.verify`), by
chaos-injecting faults (:mod:`repro.reliability.chaos`), or by soaking
the serving layer.  This package proves what it can *statically*, from
the artifact or the code alone, before any kernel runs:

* :mod:`repro.staticcheck.artifact` — audits a CBM artifact (in-memory
  matrix or ``.npz`` archive): rootedness/acyclicity of the compression
  tree, delta-set consistency, the paper's Property 1 and Property 2
  bounds, variant scaling-vector ranges, and archive header/payload
  agreement.  Reports findings instead of raising, so corrupted
  artifacts can be *described*, not just rejected.
* :mod:`repro.staticcheck.hazards` — a race detector for the branch-
  parallel update stage (paper Section V-B): write-write and
  read-before-write hazards across a plan's branch decomposition, level
  schedule ordering, workspace-pool aliasing, and executor watchdog
  coverage.  It proves branch independence instead of assuming it.
  PR8 adds the cross-process analogues: shard-plan audits (row
  coverage/overlap across row blocks, shared-memory segment aliasing).
* :mod:`repro.staticcheck.lint` — an AST-based contract linter over the
  source tree enforcing the codebase's concurrency/buffer conventions
  (declared in-place buffer mutation, lock-guarded ``GuardStats``
  counters, no swallowed broad excepts, no sleeps under a lock, no
  shared-memory segments created outside the registry helper) with
  ruff-style output and a regression baseline.

All three are surfaced as ``repro check {artifact,plan,code}`` in the
CLI and run as the required ``staticcheck`` CI job.
"""

from repro.staticcheck.artifact import audit_archive, audit_arrays, audit_cbm
from repro.staticcheck.hazards import (
    analyze_batch_layout,
    analyze_branches,
    analyze_level_schedule,
    analyze_plan,
    analyze_pool,
    analyze_schedule,
    analyze_shard_plan,
)
from repro.staticcheck.lint import lint_paths, lint_source, load_baseline
from repro.staticcheck.report import AuditReport, Finding, Severity

__all__ = [
    "AuditReport",
    "Finding",
    "Severity",
    "analyze_batch_layout",
    "analyze_branches",
    "analyze_level_schedule",
    "analyze_plan",
    "analyze_pool",
    "analyze_schedule",
    "analyze_shard_plan",
    "audit_archive",
    "audit_arrays",
    "audit_cbm",
    "lint_paths",
    "lint_source",
    "load_baseline",
]
