"""Static invariant auditing for CBM artifacts, plans, and source contracts.

The rest of the repository proves correctness *dynamically* — by
multiplying against the CSR reference (:mod:`repro.core.verify`), by
chaos-injecting faults (:mod:`repro.reliability.chaos`), or by soaking
the serving layer.  This package proves what it can *statically*, from
the artifact or the code alone, before any kernel runs:

* :mod:`repro.staticcheck.artifact` — audits a CBM artifact (in-memory
  matrix or ``.npz`` archive): rootedness/acyclicity of the compression
  tree, delta-set consistency, the paper's Property 1 and Property 2
  bounds, variant scaling-vector ranges, and archive header/payload
  agreement.  Reports findings instead of raising, so corrupted
  artifacts can be *described*, not just rejected.
* :mod:`repro.staticcheck.hazards` — a race detector for the branch-
  parallel update stage (paper Section V-B): write-write and
  read-before-write hazards across a plan's branch decomposition, level
  schedule ordering, workspace-pool aliasing, and executor watchdog
  coverage.  It proves branch independence instead of assuming it.
  PR8 adds the cross-process analogues: shard-plan audits (row
  coverage/overlap across row blocks, shared-memory segment aliasing).
* :mod:`repro.staticcheck.lint` — an AST-based contract linter over the
  source tree enforcing the codebase's concurrency/buffer conventions
  (declared in-place buffer mutation, lock-guarded ``GuardStats``
  counters, no swallowed broad excepts, no sleeps or unbounded waits
  under a lock, no shared-memory segments created outside the registry
  helper) with ruff-style output and a regression baseline that warns
  on stale entries.
* :mod:`repro.staticcheck.ir` — the unified plan IR: every concurrent
  schedule the repo produces (kernel plans, batch layouts, shard plans,
  streaming swaps, prospective fused stages) lowers to one
  stage/buffer/interval representation audited by a single engine.
* :mod:`repro.staticcheck.hb` — happens-before race analysis over the
  IR: builds the HB graph from lane order, explicit edges, and
  commit-marker coverage, then reports HB-unordered conflicting
  accesses (HZ-R4xx).
* :mod:`repro.staticcheck.locks` — whole-tree lock-order and
  blocking-call analysis (SC7xx): an interprocedural lock acquisition
  graph with deadlock-cycle detection, plus local checks for blocking
  calls under a lock and ``Condition.wait`` outside a predicate loop.
* :mod:`repro.staticcheck.witness` — the test-only dynamic lock-witness
  recorder that cross-checks observed acquisition orders against the
  static graph (SC704/SC705).

These are surfaced as ``repro check {artifact,plan,code,concurrency}``
in the CLI and run as the required ``staticcheck`` and
``concurrency-check`` CI jobs.
"""

from repro.staticcheck.artifact import audit_archive, audit_arrays, audit_cbm
from repro.staticcheck.hazards import (
    analyze_batch_layout,
    analyze_branches,
    analyze_level_schedule,
    analyze_plan,
    analyze_pool,
    analyze_schedule,
    analyze_shard_plan,
)
from repro.staticcheck.hb import HBGraph, analyze_hb
from repro.staticcheck.ir import (
    Access,
    Buffer,
    FusedStage,
    PlanIR,
    SpanPolicy,
    Stage,
    analyze_hybrid_plan,
    analyze_ir,
    hybrid_rows_policy,
    lower_batch_layout,
    lower_hybrid_plan,
    lower_kernel_plan,
    lower_shard_plan,
    lower_stream_swap,
)
from repro.staticcheck.lint import (
    lint_paths,
    lint_paths_with_baseline,
    lint_source,
    load_baseline,
)
from repro.staticcheck.locks import LockGraph, analyze_locks, scan_locks
from repro.staticcheck.report import AuditReport, Finding, Severity
from repro.staticcheck.witness import (
    LockWitness,
    cross_check,
    instrument,
    witness_service,
)

__all__ = [
    "Access",
    "AuditReport",
    "Buffer",
    "Finding",
    "FusedStage",
    "HBGraph",
    "LockGraph",
    "LockWitness",
    "PlanIR",
    "Severity",
    "SpanPolicy",
    "Stage",
    "analyze_batch_layout",
    "analyze_branches",
    "analyze_hb",
    "analyze_hybrid_plan",
    "analyze_ir",
    "analyze_level_schedule",
    "analyze_locks",
    "analyze_plan",
    "analyze_pool",
    "analyze_schedule",
    "analyze_shard_plan",
    "audit_archive",
    "audit_arrays",
    "audit_cbm",
    "cross_check",
    "instrument",
    "lint_paths",
    "lint_paths_with_baseline",
    "lint_source",
    "load_baseline",
    "hybrid_rows_policy",
    "lower_batch_layout",
    "lower_hybrid_plan",
    "lower_kernel_plan",
    "lower_shard_plan",
    "lower_stream_swap",
    "scan_locks",
    "witness_service",
]
