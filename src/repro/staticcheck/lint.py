"""AST-based contract linter for the runtime's concurrency/buffer rules.

The PR2/PR3 layers rely on conventions no general-purpose linter knows:

``SC101``
    Bare ``except:`` — catches ``KeyboardInterrupt``/``SystemExit`` and
    hides which failures the handler was designed for.
``SC102``
    Broad ``except Exception``/``except BaseException`` that *swallows*:
    the handler neither re-raises nor uses the bound exception.  In the
    executor and serving hot paths a swallowed failure becomes a silently
    wrong product; handlers that record-and-propagate (the executor's
    worker trampoline) bind the exception and use it, which this rule
    allows.
``SC201``
    :class:`~repro.reliability.guard.GuardStats` counter fields
    (``calls``, ``fallbacks``, ``input_rejections``,
    ``warnings_suppressed``, ``reasons``) touched through a ``.stats.``
    attribute chain outside ``GuardStats`` itself.  The counters are
    shared across serving threads and must only be read through the
    locked accessors (``snapshot()``/``as_dict()``/``record_*``).
``SC301``
    In-place mutation (subscript assignment, augmented assignment, or
    ``.fill()``) of a buffer parameter — ``c``, ``out``, ``u``, ``buf``,
    ``dst`` — inside a function whose docstring does not declare the
    mutation with "in place"/"in-place".  The restore-or-invalidate
    contract (PR2) makes callers responsible for buffers a callee may
    half-write; an undeclared mutator breaks that audit trail.
``SC401``
    Blocking lexically inside a ``with`` block whose context manager
    mentions a lock: ``time.sleep`` (or bare ``sleep``), a zero-argument
    ``queue.get()``, or a zero-argument ``.wait()`` (``Event.wait`` with
    no timeout).  Sleeping stalls every other holder for the full sleep;
    the unbounded forms are worse — the lock is held until a *peer*
    acts, which under contention is the lock-convoy/deadlock shape the
    SC7xx pass (:mod:`repro.staticcheck.locks`) hunts interprocedurally.
    Receivers whose name mentions ``cond`` are exempt from the ``.wait``
    form: a condition wait *releases* the lock it wraps.
``SC501``
    Non-atomic persistent-artifact write outside :mod:`repro.recovery`:
    a direct ``np.savez``/``np.savez_compressed`` whose destination is
    not a file handle bound by an enclosing
    ``with atomic_write(...) as fh:`` block, or — inside a
    ``save_*``/``write_*``/``dump_*``/``persist_*`` function — a plain
    ``open(path, "w"/"wb"/...)`` or ``Path.write_text``/``write_bytes``.
    A crash mid-write tears the destination itself; every durable
    artifact must land through :func:`repro.recovery.atomic_write`
    (PR5's crash-safety contract).  Modules under ``repro/recovery``
    are exempt — they *implement* the protocol.
``SC601``
    ``SharedMemory(...)`` constructed outside :mod:`repro.parallel.shm`.
    Shared-memory segments outlive their creating process; an untracked
    segment escapes the registry's drain/atexit/sweep hygiene and leaks
    ``/dev/shm`` after a kill-9.  Every segment must come from
    :func:`repro.parallel.shm.create_segment` (registered, reaped) or
    :func:`~repro.parallel.shm.attach_ndarray` (worker-side attach);
    the ``shm`` module itself is exempt — it *implements* the registry.

Findings render ruff-style (``path:line: CODE message``).  A regression
baseline (:func:`load_baseline`) makes CI fail only on *new* findings,
and ``# staticcheck: ignore[CODE]`` on the offending line suppresses a
single finding where the contract is deliberately bent.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.report import Finding, Severity

#: GuardStats counter fields that must only be touched under its lock.
GUARDSTATS_COUNTERS = frozenset(
    {"calls", "fallbacks", "input_rejections", "warnings_suppressed", "reasons"}
)

#: Parameter names the codebase uses for caller-owned output/work buffers.
BUFFER_PARAMS = frozenset({"c", "out", "u", "buf", "dst"})

_INPLACE_MARKERS = ("in place", "in-place")

#: Function-name prefixes that mark a persistence routine for SC501.
PERSIST_FUNC_PREFIXES = ("save", "write", "dump", "persist")

#: numpy archive writers that must target an atomic_write handle.
_SAVEZ_NAMES = frozenset({"savez", "savez_compressed"})

_WRITE_MODES = frozenset("wax")

_PRAGMA = "staticcheck: ignore"


def _pragma_codes(line: str) -> set[str] | None:
    """Codes suppressed by a ``# staticcheck: ignore[...]`` pragma.

    Returns None when the line has no pragma; an empty set means a bare
    ``# staticcheck: ignore`` (suppress everything on the line).
    """
    idx = line.find(_PRAGMA)
    if idx < 0 or "#" not in line[:idx]:
        return None
    rest = line[idx + len(_PRAGMA) :]
    if rest.lstrip().startswith("["):
        inner = rest.lstrip()[1:].split("]", 1)[0]
        return {c.strip() for c in inner.split(",") if c.strip()}
    return set()


class _ContractVisitor(ast.NodeVisitor):
    """One pass over a module collecting SC1xx–SC4xx findings."""

    def __init__(self, path: str, lines: list[str]):
        self.path = path
        self.lines = lines
        self.findings: list[Finding] = []
        # Lexical state.
        self._func_stack: list[tuple[set[str], bool]] = []  # (buffer params, declared)
        self._func_names: list[str] = []
        self._lock_depth = 0
        self._class_stack: list[str] = []
        self._atomic_handles: list[str] = []  # names bound by `with atomic_write(...) as f`
        # repro.recovery implements the atomic protocol; SC501 is for
        # everyone writing *around* it.
        self._recovery_module = "recovery" in Path(path).parts
        # repro.parallel.shm implements the segment registry; SC601 is
        # for everyone allocating *around* it.
        self._shm_module = Path(path).name == "shm.py" and "parallel" in Path(path).parts

    # -- helpers -------------------------------------------------------
    def _emit(self, code: str, line: int, message: str, severity=Severity.ERROR) -> None:
        src = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        codes = _pragma_codes(src)
        if codes is not None and (not codes or code in codes):
            return
        self.findings.append(
            Finding(code=code, severity=severity, message=message, subject=self.path, line=line)
        )

    # -- SC101 / SC102: except hygiene ---------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "SC101",
                node.lineno,
                "bare `except:` — name the exceptions this handler is for",
            )
        elif self._is_broad(node.type) and self._swallows(node):
            what = ast.unparse(node.type)
            self._emit(
                "SC102",
                node.lineno,
                f"`except {what}` swallows the failure (no re-raise, bound "
                "exception unused) — narrow the exception or propagate it",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names = []
        for n in ast.walk(type_node):
            if isinstance(n, ast.Name):
                names.append(n.id)
            elif isinstance(n, ast.Attribute):
                names.append(n.attr)
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        for n in node.body:
            for sub in ast.walk(n):
                if isinstance(sub, ast.Raise):
                    return False
                if (
                    node.name
                    and isinstance(sub, ast.Name)
                    and sub.id == node.name
                ):
                    return False
        return True

    # -- SC201: GuardStats counters outside the lock -------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in GUARDSTATS_COUNTERS
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "stats"
            and self._class_stack[-1:] != ["GuardStats"]
        ):
            self._emit(
                "SC201",
                node.lineno,
                f"GuardStats counter `.stats.{node.attr}` touched outside its "
                "lock — use snapshot()/as_dict() or a record_* accessor",
            )
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- SC301: undeclared in-place buffer mutation --------------------
    def _visit_function(self, node) -> None:
        args = node.args
        names = {
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        buffers = names & BUFFER_PARAMS
        doc = ast.get_docstring(node) or ""
        declared = any(marker in doc.lower() for marker in _INPLACE_MARKERS)
        self._func_stack.append((buffers, declared))
        self._func_names.append(node.name)
        self.generic_visit(node)
        self._func_names.pop()
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _buffer_param(self, expr: ast.expr) -> str | None:
        """The enclosing function's buffer param this expression writes, if any."""
        if not self._func_stack:
            return None
        buffers, declared = self._func_stack[-1]
        if declared or not buffers:
            return None
        target = expr
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Name) and target.id in buffers:
            return target.id
        return None

    def _check_mutation(self, expr: ast.expr, line: int, how: str) -> None:
        name = self._buffer_param(expr)
        if name is not None:
            self._emit(
                "SC301",
                line,
                f"undeclared in-place mutation: {how} buffer parameter "
                f"`{name}` but the function's docstring does not say "
                "\"in place\" — callers must know this buffer is written "
                "(restore-or-invalidate contract)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._check_mutation(target, node.lineno, "subscript-assigns")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation(node.target, node.lineno, "augments")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "fill":
                self._check_mutation(func.value, node.lineno, "fills")
        # -- SC401: sleeping while holding a lock ----------------------
        is_sleep = (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            or isinstance(func, ast.Name)
            and func.id == "sleep"
        )
        if is_sleep and self._lock_depth > 0:
            self._emit(
                "SC401",
                node.lineno,
                "blocking sleep while holding a lock — every other holder "
                "stalls for the full sleep",
            )
        if self._lock_depth > 0 and not node.args and not node.keywords:
            if isinstance(func, ast.Attribute) and func.attr == "get":
                # dict.get takes a key, so a zero-argument .get() is the
                # queue form — an unbounded wait for a producer.
                self._emit(
                    "SC401",
                    node.lineno,
                    "queue.get() with no timeout while holding a lock — the "
                    "lock is held until a producer shows up; every other "
                    "holder stalls unboundedly",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "wait"
                and not self._condition_receiver(func.value)
            ):
                self._emit(
                    "SC401",
                    node.lineno,
                    ".wait() with no timeout while holding a lock — the lock "
                    "is held until a peer sets the event; every other holder "
                    "stalls unboundedly",
                )
        self._check_persistent_write(node)
        # -- SC601: shared-memory segment created outside the registry --
        is_shm_ctor = (
            isinstance(func, ast.Attribute)
            and func.attr == "SharedMemory"
            or isinstance(func, ast.Name)
            and func.id == "SharedMemory"
        )
        if is_shm_ctor and not self._shm_module:
            self._emit(
                "SC601",
                node.lineno,
                "`SharedMemory(...)` outside repro.parallel.shm — an "
                "untracked segment escapes the registry's drain/atexit/"
                "sweep hygiene and leaks /dev/shm after a kill-9; use "
                "shm.create_segment / shm.attach_ndarray",
            )
        self.generic_visit(node)

    # -- SC501: non-atomic persistent-artifact writes ------------------
    def _in_persist_function(self) -> bool:
        return bool(self._func_names) and self._func_names[-1].startswith(
            PERSIST_FUNC_PREFIXES
        )

    @staticmethod
    def _open_write_mode(node: ast.Call) -> str | None:
        """The literal write mode of an ``open`` call, if any."""
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            if set(mode.value) & _WRITE_MODES:
                return mode.value
        return None

    def _check_persistent_write(self, node: ast.Call) -> None:
        if self._recovery_module:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SAVEZ_NAMES
            or isinstance(func, ast.Name)
            and func.id in _SAVEZ_NAMES
        ):
            target = node.args[0] if node.args else None
            if not (
                isinstance(target, ast.Name) and target.id in self._atomic_handles
            ):
                name = func.attr if isinstance(func, ast.Attribute) else func.id
                self._emit(
                    "SC501",
                    node.lineno,
                    f"`{name}` writes a persistent archive non-atomically — "
                    "route it through `with atomic_write(path) as fh: "
                    f"{name}(fh, ...)` so a crash cannot tear the artifact",
                )
            return
        if not self._in_persist_function():
            return
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._open_write_mode(node)
            if mode is not None:
                self._emit(
                    "SC501",
                    node.lineno,
                    f"`open(..., {mode!r})` in a persistence function writes "
                    "the destination in place — a crash mid-write leaves a "
                    "torn file; use `repro.recovery.atomic_write`",
                )
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            self._emit(
                "SC501",
                node.lineno,
                f"`.{func.attr}()` in a persistence function writes the "
                "destination in place — a crash mid-write leaves a torn "
                "file; use `repro.recovery.atomic_write`",
            )

    def visit_With(self, node: ast.With) -> None:
        holds = any(self._mentions_lock(item.context_expr) for item in node.items)
        handles = []
        for item in node.items:
            call = item.context_expr
            if (
                isinstance(call, ast.Call)
                and (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "atomic_write"
                    or isinstance(call.func, ast.Attribute)
                    and call.func.attr == "atomic_write"
                )
                and isinstance(item.optional_vars, ast.Name)
            ):
                handles.append(item.optional_vars.id)
        if holds:
            self._lock_depth += 1
        self._atomic_handles.extend(handles)
        self.generic_visit(node)
        for _ in handles:
            self._atomic_handles.pop()
        if holds:
            self._lock_depth -= 1

    @staticmethod
    def _condition_receiver(expr: ast.expr) -> bool:
        """Whether ``expr`` names a condition variable (``cond`` in name).

        ``Condition.wait`` releases the lock it wraps, so waiting on a
        held condition is the predicate-loop idiom, not a stall (the
        SC703 rule in :mod:`repro.staticcheck.locks` audits that idiom).
        """
        for n in ast.walk(expr):
            name = None
            if isinstance(n, ast.Name):
                name = n.id
            elif isinstance(n, ast.Attribute):
                name = n.attr
            if name is not None and "cond" in name.lower():
                return True
        return False

    @staticmethod
    def _mentions_lock(expr: ast.expr) -> bool:
        for n in ast.walk(expr):
            name = None
            if isinstance(n, ast.Name):
                name = n.id
            elif isinstance(n, ast.Attribute):
                name = n.attr
            if name is not None and "lock" in name.lower():
                return True
        return False


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns findings in line order."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                code="SC001",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                subject=path,
                line=exc.lineno or 1,
            )
        ]
    visitor = _ContractVisitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line or 0, f.code))


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    return out


def lint_paths(paths, *, baseline: set[str] | None = None, root=None) -> list[Finding]:
    """Lint files/directories, dropping findings present in ``baseline``.

    ``root`` (default: current directory) relativises the paths used in
    rendered findings so baseline entries are machine-independent.
    """
    findings, _stale = lint_paths_with_baseline(
        paths, baseline=baseline or set(), root=root
    )
    return findings


def lint_paths_with_baseline(
    paths, *, baseline: set[str], root=None
) -> tuple[list[Finding], set[str]]:
    """Lint and report baseline hygiene: ``(new findings, stale entries)``.

    A *stale* baseline entry matched no finding this run — the suppressed
    bug was fixed (or the code moved) and the suppression outlived it.
    Stale entries must be pruned, otherwise the baseline silently grows
    into a graveyard that can mask a *new* finding landing on the same
    rendered line; ``repro check code --strict-baseline`` fails on them.
    """
    root = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    used: set[str] = set()
    for file in iter_python_files(paths):
        try:
            rel = str(file.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(file)
        for f in lint_source(file.read_text(encoding="utf-8"), rel):
            if f.render() in baseline:
                used.add(f.render())
            else:
                findings.append(f)
    return findings, set(baseline) - used


def load_baseline(path) -> set[str]:
    """Read a baseline file: one rendered finding per line; ``#`` comments."""
    p = Path(path)
    if not p.exists():
        return set()
    out = set()
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.add(line)
    return out
