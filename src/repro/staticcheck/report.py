"""Structured findings shared by every static checker.

A :class:`Finding` is one violated invariant: a stable machine-readable
code (``CBM-T003``, ``HZ-W002``, ``SC102``, ...), a severity, a message
that names the violated property, and an optional location (``subject``
is an artifact name or file path; ``line`` is set by the source linter).
An :class:`AuditReport` aggregates the findings of one audited subject
together with the ``checks`` that *passed* — the audit is a proof
artifact, so what was established matters as much as what failed.

Reports are JSON-ready (:meth:`AuditReport.to_dict`) for the CI job's
uploaded audit artifact, and render as ruff-style one-liners
(``subject:line: CODE message``) for terminals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; higher is worse (ordering is meaningful)."""

    WARNING = 1  # contract/performance property violated; products still correct
    ERROR = 2  # correctness invariant violated; products may be silently wrong

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One violated invariant, machine-readable."""

    code: str
    severity: Severity
    message: str
    subject: str = ""
    line: int | None = None

    def render(self) -> str:
        """Ruff-style one-liner: ``subject:line: CODE message``."""
        loc = self.subject or "<artifact>"
        if self.line is not None:
            loc = f"{loc}:{self.line}"
        return f"{loc}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "line": self.line,
        }


@dataclass
class AuditReport:
    """Findings plus passed checks for one audited subject.

    ``checks`` maps check names to True (proved) / False (violated or not
    provable); every False check has at least one corresponding finding.
    """

    subject: str
    findings: list[Finding] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
        line: int | None = None,
    ) -> Finding:
        finding = Finding(
            code=code, severity=severity, message=message, subject=self.subject, line=line
        )
        self.findings.append(finding)
        return finding

    def passed(self, name: str) -> None:
        """Record a check as proved unless a finding already failed it."""
        self.checks.setdefault(name, True)

    def failed(self, name: str) -> None:
        self.checks[name] = False

    def merge(self, other: "AuditReport") -> None:
        """Fold another report's findings and checks into this one."""
        self.findings.extend(other.findings)
        for name, ok in other.checks.items():
            self.checks[name] = self.checks.get(name, True) and ok

    def has(self, code_prefix: str) -> bool:
        """Whether any finding's code starts with ``code_prefix``."""
        return any(f.code.startswith(code_prefix) for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": dict(self.checks),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Multi-line terminal rendering: verdict, checks, findings."""
        lines = [f"{self.subject}: {'clean' if self.ok else 'FINDINGS'}"]
        for name, ok in sorted(self.checks.items()):
            lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
        for f in self.findings:
            lines.append(f"  {str(f.severity).upper():7s} {f.code} {f.message}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
