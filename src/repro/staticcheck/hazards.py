"""Static race detection for the branch-parallel update stage (Section V-B).

The paper's parallel update stage is race-free *by construction*: each
worker replays complete branches (subtrees of the virtual root), and
branches share no rows, so no two threads ever write the same row and no
thread reads a row another thread is writing.  The runtime assumes this
— :class:`~repro.parallel.executor.ThreadedUpdateExecutor` takes the
branch lists on faith and uses no per-row synchronisation.

This module *proves* the assumption for a concrete plan instead of
trusting it.  Given a :class:`~repro.runtime.plan.KernelPlan` (or raw
branch lists / level schedules) it statically detects:

* **write-write hazards** — a row reachable from two branch lists, a row
  duplicated inside one branch, or a row written by two levels of the
  vectorised level schedule;
* **read-before-write hazards** — an edge scheduled before its parent is
  final: a non-root row preceding its parent within a branch, a branch
  whose root depends on another branch's output, or a level-schedule
  entry whose parent is written in the same or a later level;
* **workspace aliasing** — a :class:`~repro.runtime.buffers.WorkspacePool`
  holding the same buffer twice or two idle buffers sharing memory,
  which would hand one array to two concurrent executions and violate
  the Property 3 memory accounting;
* **watchdog coverage gaps** — branches with no timeout owner: neither a
  ``branch_timeout`` nor a request ``deadline`` bounds their replay, so
  a stalled worker would hang the caller forever.

All detectors return an :class:`AuditReport`; nothing here executes a
kernel or spawns a thread.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import VIRTUAL
from repro.staticcheck.report import AuditReport, Severity

_MAX_LISTED = 5


def _fmt(rows) -> str:
    rows = list(rows)
    listed = ", ".join(str(int(r)) for r in rows[:_MAX_LISTED])
    more = f", … (+{len(rows) - _MAX_LISTED} more)" if len(rows) > _MAX_LISTED else ""
    return f"[{listed}{more}]"


def analyze_branches(
    branches,
    parent,
    *,
    subject: str = "branch-decomposition",
) -> AuditReport:
    """Prove the branch decomposition race-free for threaded replay.

    ``branches`` is a list of row-index arrays (each in claimed
    topological order, root first); ``parent`` is the compression tree's
    parent vector.  Detects write-write hazards (shared or duplicated
    rows), read-before-write hazards (row before its parent, or a branch
    root that is not a child of the virtual row), and coverage gaps
    (tree rows no branch replays).
    """
    report = AuditReport(subject=subject)
    parent = np.asarray(parent, dtype=np.int64).ravel()
    n = len(parent)

    owner: dict[int, int] = {}
    shared: list[int] = []
    duplicated: list[int] = []
    for bi, branch in enumerate(branches):
        seen: set[int] = set()
        for x in np.asarray(branch, dtype=np.int64).ravel():
            x = int(x)
            if x in seen:
                duplicated.append(x)
                continue
            seen.add(x)
            if x in owner and owner[x] != bi:
                shared.append(x)
            else:
                owner.setdefault(x, bi)
    if shared:
        report.add(
            "HZ-W001",
            f"write-write hazard: rows {_fmt(shared)} are reachable from two "
            "branch lists — two workers would replay (write) the same row "
            "concurrently",
        )
        report.failed("branches.disjoint")
    else:
        report.passed("branches.disjoint")
    if duplicated:
        report.add(
            "HZ-W002",
            f"write-write hazard: rows {_fmt(duplicated)} appear twice within "
            "one branch — the row would be updated twice per product",
        )
        report.failed("branches.disjoint")

    missing = [x for x in range(n) if x not in owner]
    if missing:
        report.add(
            "HZ-B001",
            f"coverage gap: tree rows {_fmt(missing)} belong to no branch — "
            "their update-stage additions would never run",
        )
        report.failed("branches.coverage")
    else:
        report.passed("branches.coverage")

    misordered: list[int] = []
    cross: list[int] = []
    for bi, branch in enumerate(branches):
        branch = np.asarray(branch, dtype=np.int64).ravel()
        pos = {int(x): i for i, x in enumerate(branch)}
        for i, x in enumerate(branch):
            x = int(x)
            if x < 0 or x >= n:
                continue  # out-of-range rows already imply a broken tree
            p = int(parent[x])
            if i == 0:
                if p != VIRTUAL:
                    cross.append(x)
                continue
            if p == VIRTUAL:
                continue
            if p in pos:
                if pos[p] > i:
                    misordered.append(x)
            elif owner.get(p, bi) != bi:
                cross.append(x)
    if misordered:
        report.add(
            "HZ-R001",
            f"read-before-write hazard: rows {_fmt(misordered)} are replayed "
            "before their parent within the same branch — the edge is "
            "scheduled before its parent's level",
        )
        report.failed("branches.topological")
    else:
        report.passed("branches.topological")
    if cross:
        report.add(
            "HZ-R002",
            f"read-before-write hazard: rows {_fmt(cross)} read a parent row "
            "owned by a different branch — one worker would read a row "
            "another worker is still writing (branch independence broken)",
        )
        report.failed("branches.rooted")
    else:
        report.passed("branches.rooted")
    return report


def analyze_level_schedule(
    level_pairs,
    *,
    n_rows: int | None = None,
    subject: str = "level-schedule",
) -> AuditReport:
    """Prove a vectorised level schedule hazard-free.

    ``level_pairs`` is ``KernelPlan.level_pairs``: per level, the
    ``(children, parents)`` index arrays of ``c[children] += c[parents]``.
    Each level's scatter is one vectorised statement, so correctness
    requires every parent to be *final* before the level runs (written by
    an earlier level or never written at all) and every child to be
    written exactly once across the schedule.
    """
    report = AuditReport(subject=subject)
    written: set[int] = set()
    pending: set[int] = set()
    for lv, ps in level_pairs:
        pending.update(int(x) for x in np.asarray(lv).ravel())
    early: list[int] = []
    rewritten: list[int] = []
    intra: list[int] = []
    for lv, ps in level_pairs:
        lv = np.asarray(lv, dtype=np.int64).ravel()
        ps = np.asarray(ps, dtype=np.int64).ravel()
        lv_set = set(int(x) for x in lv)
        if len(lv_set) != len(lv):
            counts: dict[int, int] = {}
            for x in lv:
                counts[int(x)] = counts.get(int(x), 0) + 1
            intra.extend(x for x, k in counts.items() if k > 1)
        for p in ps:
            p = int(p)
            if p == VIRTUAL:
                continue
            # A parent still pending (written by this or a later level)
            # is read before its own update ran.
            if p in pending and p not in written:
                early.append(p)
        for x in lv_set:
            if x in written:
                rewritten.append(x)
            written.add(x)
            pending.discard(x)
    if intra:
        report.add(
            "HZ-L002",
            f"write-write hazard: rows {_fmt(intra)} appear twice within one "
            "level's vectorised scatter — duplicate fancy indices collapse "
            "to a single (last-wins) write",
        )
        report.failed("levels.unique_writes")
    if rewritten:
        report.add(
            "HZ-L003",
            f"write-write hazard: rows {_fmt(sorted(set(rewritten)))} are "
            "written by more than one level",
        )
        report.failed("levels.unique_writes")
    if not intra and not rewritten:
        report.passed("levels.unique_writes")
    if early:
        report.add(
            "HZ-L001",
            f"read-before-write hazard: rows {_fmt(sorted(set(early)))} are "
            "read as parents before the level that writes them has run — "
            "the edge is scheduled before its parent's level",
        )
        report.failed("levels.ordering")
    else:
        report.passed("levels.ordering")
    if n_rows is not None:
        oob = [x for x in written if x < 0 or x >= n_rows]
        if oob:
            report.add(
                "HZ-L004",
                f"level schedule writes out-of-range rows {_fmt(sorted(oob))} "
                f"for a {n_rows}-row buffer",
            )
            report.failed("levels.bounds")
        else:
            report.passed("levels.bounds")
    return report


def analyze_pool(pool, *, subject: str = "workspace-pool") -> AuditReport:
    """Prove the workspace pool free-lists alias-free (Property 3).

    The pool must never hold the same array twice (it would hand one
    buffer to two concurrent executions) nor two idle buffers that share
    memory (releasing a view alongside its base re-introduces the same
    bytes under two keys).  Also checks the pool's byte accounting
    (``idle_bytes`` vs the free-lists it actually holds).
    """
    report = AuditReport(subject=subject)
    with pool._lock:
        entries: list[tuple[tuple, np.ndarray]] = [
            (key, buf) for key, bufs in pool._free.items() for buf in bufs
        ]
        reported_idle = sum(b.nbytes for _, b in entries)
    dupes = 0
    overlaps = 0
    for i, (_, a) in enumerate(entries):
        for _, b in entries[i + 1 :]:
            if a is b:
                dupes += 1
            elif np.shares_memory(a, b):
                overlaps += 1
    if dupes:
        report.add(
            "HZ-P001",
            f"workspace aliasing: {dupes} buffer(s) appear twice in the "
            "pool's free lists — one array would be acquired by two "
            "concurrent executions (Property 3 reuse contract broken)",
        )
        report.failed("pool.aliasing")
    if overlaps:
        report.add(
            "HZ-P002",
            f"workspace aliasing: {overlaps} idle buffer pair(s) share "
            "memory — releasing a view next to its base double-counts the "
            "same bytes (Property 3 accounting broken)",
        )
        report.failed("pool.aliasing")
    if not dupes and not overlaps:
        report.passed("pool.aliasing")
    if pool.idle_bytes() != reported_idle:
        report.add(
            "HZ-P003",
            "workspace accounting drift: idle_bytes() disagrees with the "
            "free lists actually held",
        )
        report.failed("pool.accounting")
    else:
        report.passed("pool.accounting")
    return report


def analyze_watchdog(
    branches,
    *,
    branch_timeout: float | None = None,
    deadline: float | None = None,
    subject: str = "executor-watchdog",
) -> AuditReport:
    """Report branches with no timeout owner.

    A branch replay is bounded either per-branch (``branch_timeout``) or
    per-request (``deadline``).  With neither set, every branch is a
    coverage gap: a stalled worker would hang the caller forever, which
    the serving layer's deadline contract forbids.
    """
    report = AuditReport(subject=subject)
    count = len(branches)
    if count and branch_timeout is None and deadline is None:
        report.add(
            "HZ-G001",
            f"watchdog coverage gap: all {count} branches have no timeout "
            "owner (neither branch_timeout nor a request deadline bounds "
            "their replay)",
            severity=Severity.WARNING,
        )
        report.failed("watchdog.coverage")
    else:
        report.passed("watchdog.coverage")
    return report


def analyze_schedule(
    result,
    costs=None,
    *,
    subject: str = "update-schedule",
) -> AuditReport:
    """Sanity-check a simulated :class:`ScheduleResult` against its costs.

    An impossible schedule — finishing faster than its critical path or
    than perfect work division allows, or claiming more than 100%
    utilisation — means the simulator's accounting drifted from the
    branch decomposition it was fed.
    """
    report = AuditReport(subject=subject)
    ok = True
    tol = 1e-9 + 1e-12 * max(result.total_work, 1.0)
    if result.makespan + tol < result.critical_path:
        report.add(
            "HZ-S001",
            f"impossible schedule: makespan {result.makespan} is shorter "
            f"than the critical path {result.critical_path}",
        )
        ok = False
    if result.threads > 0 and result.makespan * result.threads + tol < result.total_work:
        report.add(
            "HZ-S001",
            f"impossible schedule: {result.threads} threads cannot fit "
            f"{result.total_work} work units into makespan {result.makespan}",
        )
        ok = False
    if result.utilisation > 1.0 + 1e-9:
        report.add(
            "HZ-S002",
            f"schedule claims utilisation {result.utilisation:.3f} > 1",
        )
        ok = False
    if costs is not None:
        costs = np.asarray(costs, dtype=np.float64).ravel()
        if len(costs) != result.tasks:
            report.add(
                "HZ-S003",
                f"schedule accounts for {result.tasks} tasks but the branch "
                f"decomposition has {len(costs)}",
            )
            ok = False
        elif abs(float(costs.sum()) - result.total_work) > tol:
            report.add(
                "HZ-S003",
                f"schedule total_work {result.total_work} disagrees with the "
                f"branch costs' sum {float(costs.sum())}",
            )
            ok = False
    if ok:
        report.passed("schedule.accounting")
    else:
        report.failed("schedule.accounting")
    return report


def analyze_batch_layout(layout, *, subject: str = "batch-layout") -> AuditReport:
    """Prove a stacked-operand :class:`~repro.serving.batching.BatchLayout`
    free of cross-member hazards before anything executes.

    The micro-batching stage packs several requests' operands into one
    stacked buffer and splits the product back by column span; the
    layout is the static contract the split step relies on.  Lowers the
    layout through the unified plan IR (:mod:`repro.staticcheck.ir`) and
    runs the single span engine, which detects:

    * **HZ-X001, cross-member aliasing** — two member spans overlapping,
      so one output column would be handed to two requesters (the
      stacked-operand form of the Property 3 violation the pool detector
      catches);
    * **HZ-X002, out-of-bounds spans** — a member span outside the
      stacked buffer's ``total_columns``;
    * **HZ-X003, uninitialised gaps** — columns between member spans
      that no one owns: they are neither written by a member nor
      zero-filled as trailing padding, so recycled pool garbage would
      feed the kernel;
    * **HZ-X004, non-positive widths** — a zero- or negative-width
      member, which would silently resolve to an empty (or aliasing)
      output slice.
    """
    from repro.staticcheck.ir import analyze_ir, lower_batch_layout

    return analyze_ir(lower_batch_layout(layout, subject=subject))


def _legacy_analyze_batch_layout(layout, *, subject: str = "batch-layout") -> AuditReport:
    """Pre-IR implementation, kept as the migration-equivalence oracle.

    The property suite lowers random layouts through both this and the
    IR engine and requires identical verdicts; new rules belong in the
    engine, not here.
    """
    report = AuditReport(subject=subject)
    spans = sorted(layout.spans())

    bad_width = [(lo, hi) for lo, hi in spans if hi - lo <= 0]
    if bad_width:
        report.add(
            "HZ-X004",
            f"batch layout: member span(s) {bad_width[:_MAX_LISTED]} have "
            "non-positive width — the member would receive an empty or "
            "aliasing output slice",
        )
        report.failed("batch.widths")
    else:
        report.passed("batch.widths")

    overlaps = [
        (spans[i], spans[i + 1])
        for i in range(len(spans) - 1)
        if spans[i + 1][0] < spans[i][1]
    ]
    if overlaps:
        report.add(
            "HZ-X001",
            f"cross-member aliasing: member spans {overlaps[:_MAX_LISTED]} "
            "overlap — one stacked output column would be split to two "
            "requesters (Property 3 ownership broken)",
        )
        report.failed("batch.disjoint")
    else:
        report.passed("batch.disjoint")

    oob = [
        (lo, hi)
        for lo, hi in spans
        if lo < 0 or hi > layout.total_columns
    ]
    if oob:
        report.add(
            "HZ-X002",
            f"batch layout: member span(s) {oob[:_MAX_LISTED]} fall outside "
            f"the {layout.total_columns}-column stacked buffer",
        )
        report.failed("batch.bounds")
    else:
        report.passed("batch.bounds")

    gaps = [
        (spans[i][1], spans[i + 1][0])
        for i in range(len(spans) - 1)
        if spans[i + 1][0] > spans[i][1]
    ]
    if spans and spans[0][0] > 0:
        gaps.insert(0, (0, spans[0][0]))
    if gaps:
        report.add(
            "HZ-X003",
            f"batch layout: column gap(s) {gaps[:_MAX_LISTED]} between member "
            "spans are owned by no member — unlike trailing quantisation "
            "padding they are never zero-filled, so recycled workspace "
            "garbage would feed the kernel",
        )
        report.failed("batch.contiguous")
    else:
        report.passed("batch.contiguous")
    return report


def analyze_shard_plan(
    plan=None,
    *,
    bounds=None,
    n_rows: int | None = None,
    layout=None,
    subject: str = "shard-plan",
) -> AuditReport:
    """Prove a sharded row-block plan safe to execute across processes.

    Pass a :class:`~repro.parallel.shard.ShardedPlan` (its bounds and
    shared-memory layout are audited directly) or the raw pieces.
    Lowers the plan through the unified IR (:mod:`repro.staticcheck.ir`)
    — per-shard worker lanes with write-then-commit stage pairs, plus a
    byte-addressed buffer per shared-memory segment — and runs the
    single engine.  Detects — codes HZ-S1xx, because HZ-S001..S003 were
    already claimed by the schedule-accounting checks above:

    * **HZ-S101, coverage gap** — a row belonging to no shard: its output
      slice would be served stale (or uninitialised) every execution;
    * **HZ-S102, row overlap** — a row claimed by two shards or a bound
      outside the matrix: two worker processes would write the same
      output rows concurrently, the cross-process analogue of HZ-W001;
    * **HZ-S103, shared-memory aliasing** — two packed operand arrays
      (or an operand and the status/staging block) overlapping inside a
      segment: one worker's input bytes would be another's scratch,
      Property 3's no-extra-memory accounting silently broken;
    * **HZ-R403, torn commit** — a worker's EPOCH/CRC board commit not
      ordered after its slice write (commit-LAST protocol broken), via
      the happens-before layer.
    """
    from repro.staticcheck.ir import analyze_ir, lower_shard_plan

    return analyze_ir(
        lower_shard_plan(
            plan, bounds=bounds, n_rows=n_rows, layout=layout, subject=subject
        )
    )


def _legacy_analyze_shard_plan(
    plan=None,
    *,
    bounds=None,
    n_rows: int | None = None,
    layout=None,
    subject: str = "shard-plan",
) -> AuditReport:
    """Pre-IR implementation, kept as the migration-equivalence oracle.

    The property suite audits random bounds/layouts through both this
    and the IR engine and requires identical verdicts on the shared
    domain; new rules belong in the engine, not here.
    """
    if plan is not None:
        bounds = plan.bounds
        n_rows = plan.shape[0]
        layout = plan.segment_layout()
    report = AuditReport(subject=subject)
    bounds = [(int(lo), int(hi)) for lo, hi in (bounds or [])]

    bad = [
        (lo, hi)
        for lo, hi in bounds
        if lo < 0 or hi < lo or (n_rows is not None and hi > n_rows)
    ]
    ordered = sorted(b for b in bounds if b not in bad)
    overlaps = [
        (ordered[i], ordered[i + 1])
        for i in range(len(ordered) - 1)
        if ordered[i + 1][0] < ordered[i][1]
    ]
    if bad or overlaps:
        detail = []
        if bad:
            detail.append(f"invalid bounds {bad[:_MAX_LISTED]}")
        if overlaps:
            detail.append(f"overlapping blocks {overlaps[:_MAX_LISTED]}")
        report.add(
            "HZ-S102",
            "shard overlap: " + "; ".join(detail) + " — two worker processes "
            "would write the same output rows concurrently",
        )
        report.failed("shards.disjoint")
    else:
        report.passed("shards.disjoint")

    if n_rows is not None:
        covered = 0
        cursor = 0
        gaps: list[tuple[int, int]] = []
        for lo, hi in ordered:
            if lo > cursor:
                gaps.append((cursor, lo))
            covered += max(0, hi - max(lo, cursor))
            cursor = max(cursor, hi)
        if cursor < n_rows:
            gaps.append((cursor, n_rows))
        if gaps:
            report.add(
                "HZ-S101",
                f"shard coverage gap: row ranges {gaps[:_MAX_LISTED]} belong "
                "to no shard — their output slice would never be computed",
            )
            report.failed("shards.coverage")
        else:
            report.passed("shards.coverage")

    if layout is not None:
        by_segment: dict[str, list[dict]] = {}
        for span in layout:
            by_segment.setdefault(span["segment"], []).append(span)
        aliased: list[str] = []
        for segment, spans in by_segment.items():
            spans = sorted(spans, key=lambda s: s["offset"])
            for i in range(len(spans) - 1):
                a, b = spans[i], spans[i + 1]
                if b["offset"] < a["offset"] + a["nbytes"]:
                    aliased.append(
                        f"{segment}: shard{a['shard']}.{a['array']} ∩ "
                        f"shard{b['shard']}.{b['array']}"
                    )
        if aliased:
            report.add(
                "HZ-S103",
                f"shared-memory aliasing: {aliased[:_MAX_LISTED]} — one "
                "worker's operand bytes overlap another array in the same "
                "segment (Property 3 accounting broken)",
            )
            report.failed("shards.segments")
        else:
            report.passed("shards.segments")
    return report


def analyze_plan(
    plan,
    *,
    threads: int | None = None,
    p: int = 1,
    branch_timeout: float | None = None,
    deadline: float | None = None,
    watchdog: bool = True,
    batch_layout=None,
    subject: str | None = None,
) -> AuditReport:
    """Full hazard analysis of a built :class:`KernelPlan`.

    Composes the branch, level-schedule, workspace-pool, and watchdog
    detectors over the plan's own cached structures; when ``threads`` is
    given, additionally simulates ``plan_update_schedule`` and
    sanity-checks its accounting.  ``watchdog=False`` skips the
    timeout-ownership check for callers that run the update stage
    sequentially (no workers to stall).  ``batch_layout`` audits a
    stacked-operand column map alongside the plan (the batched-serving
    schedule: one plan execution, many requesters).
    """
    from repro.staticcheck.ir import analyze_ir, lower_kernel_plan

    name = subject if subject is not None else f"plan({plan.variant.value},{plan.update})"
    report = AuditReport(subject=name)
    report.merge(analyze_branches(plan.branches, plan._parent, subject=name))
    report.merge(
        analyze_level_schedule(plan.level_pairs, n_rows=plan.shape[0], subject=name)
    )
    # Happens-before view of the same plan: branch lanes barriered after
    # the multiply, joined before the finalise stage.  Subsumes the
    # shares_memory-style aliasing argument (HZ-R401/R402 on conflicts).
    report.merge(analyze_ir(lower_kernel_plan(plan, subject=name)))
    report.merge(analyze_pool(plan.pool, subject=name))
    if watchdog:
        report.merge(
            analyze_watchdog(
                plan.branches,
                branch_timeout=branch_timeout,
                deadline=deadline,
                subject=name,
            )
        )
    if batch_layout is not None:
        report.merge(analyze_batch_layout(batch_layout, subject=name))
    if threads is not None:
        from repro.parallel.schedule import (
            branch_costs_from_branches,
            plan_update_schedule,
        )

        result = plan_update_schedule(plan, p, threads)
        costs = branch_costs_from_branches(plan.branches, p, dad=plan.row_scaled)
        report.merge(analyze_schedule(result, costs, subject=name))
    return report
