"""Format router: per-row-block CBM/CSR decisions with hysteresis.

The router turns :func:`~repro.autotune.cost.block_costs` into a
:class:`TuneDecision` — an ordered list of ``(lo, hi, format)`` blocks
tiling the adjacency's rows.  Two disciplines keep it safe:

* **hysteresis** — an incumbent block format is only displaced when the
  challenger's predicted win exceeds a relative margin, so a block
  sitting on the crossover does not flap between formats on every
  re-tune;
* **collapse** — an all-CBM or all-CSR decision collapses to the pure
  route, so single-format-dominant graphs execute the exact static
  kernel (no hybrid dispatch overhead to pay, which is what makes the
  never-slower bound on those graphs structural rather than measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autotune.cost import BlockCost, CostModel, block_costs
from repro.core.cbm import CBMMatrix
from repro.sparse.blocked import coalesce_bounds, partition_rows
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive

__all__ = ["BlockDecision", "FormatRouter", "RouterPolicy", "TuneDecision"]

FORMATS = ("cbm", "csr")


@dataclass(frozen=True)
class RouterPolicy:
    """Knobs of the format decision."""

    num_blocks: int = 8
    min_rows: int = 16           # blocks smaller than this merge left
    margin: float = 0.10         # relative win required to displace an incumbent
    measure: bool = True         # verify candidate routes by measurement in tune()
    pin: str | None = None       # force every block to one format (chaos/negative control)

    def __post_init__(self) -> None:
        check_positive(self.num_blocks, "num_blocks")
        check_positive(self.min_rows, "min_rows")
        if not 0.0 <= self.margin < 1.0:
            raise ValueError(f"margin must be in [0, 1), got {self.margin}")
        if self.pin is not None and self.pin not in FORMATS:
            raise ValueError(f"pin must be one of {FORMATS}, got {self.pin!r}")


@dataclass(frozen=True)
class BlockDecision:
    """One routed block: the chosen format plus the costs that chose it."""

    lo: int
    hi: int
    fmt: str
    cost: BlockCost | None = None
    measured_s: float | None = None

    @property
    def rows(self) -> int:
        return self.hi - self.lo

    def to_dict(self) -> dict:
        d = {"lo": self.lo, "hi": self.hi, "format": self.fmt}
        if self.cost is not None:
            d.update(self.cost.to_dict())
        if self.measured_s is not None:
            d["measured_s"] = self.measured_s
        return d


@dataclass
class TuneDecision:
    """The router's output: a block map plus the route it implies."""

    blocks: list[BlockDecision]
    columns: int
    predicted: dict = field(default_factory=dict)

    @property
    def route(self) -> str:
        fmts = {b.fmt for b in self.blocks}
        if fmts == {"cbm"}:
            return "cbm"
        if fmts == {"csr"}:
            return "csr"
        return "hybrid"

    @property
    def n_rows(self) -> int:
        return self.blocks[-1].hi if self.blocks else 0

    def block_map(self) -> list[list]:
        return [[b.lo, b.hi, b.fmt] for b in self.blocks]

    def fmt_for(self, row: int) -> str | None:
        for b in self.blocks:
            if b.lo <= row < b.hi:
                return b.fmt
        return None

    def to_meta(self) -> dict:
        """JSON-safe form committed alongside a generation's artifact."""
        return {
            "route": self.route,
            "columns": self.columns,
            "blocks": self.block_map(),
            "predicted": {k: float(v) for k, v in self.predicted.items()},
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "TuneDecision":
        blocks = [
            BlockDecision(int(lo), int(hi), str(fmt))
            for lo, hi, fmt in meta.get("blocks", [])
        ]
        return cls(
            blocks=blocks,
            columns=int(meta.get("columns", 1)),
            predicted=dict(meta.get("predicted", {})),
        )

    @classmethod
    def pure(cls, fmt: str, n_rows: int, columns: int) -> "TuneDecision":
        if fmt not in FORMATS:
            raise ValueError(f"unknown format {fmt!r}")
        return cls(
            blocks=[BlockDecision(0, int(n_rows), fmt)], columns=int(columns)
        )


class FormatRouter:
    """Scores blocks with a :class:`CostModel` and emits a :class:`TuneDecision`."""

    def __init__(self, model: CostModel):
        self.model = model

    def decide(
        self,
        a: CSRMatrix,
        cbm: CBMMatrix,
        columns: int,
        *,
        policy: RouterPolicy | None = None,
        incumbent: TuneDecision | None = None,
    ) -> TuneDecision:
        policy = policy or RouterPolicy()
        check_positive(columns, "columns")
        bounds = coalesce_bounds(
            partition_rows(a.row_nnz(), policy.num_blocks), min_rows=policy.min_rows
        )
        costs = block_costs(a, cbm, bounds, columns, self.model)
        blocks: list[BlockDecision] = []
        for c in costs:
            if policy.pin is not None:
                fmt = policy.pin
            else:
                fmt = "cbm" if c.cbm_s <= c.csr_s else "csr"
                held = incumbent.fmt_for(c.lo) if incumbent is not None else None
                if held in FORMATS and fmt != held:
                    held_s = c.cbm_s if held == "cbm" else c.csr_s
                    cand_s = c.cbm_s if fmt == "cbm" else c.csr_s
                    if cand_s > held_s * (1.0 - policy.margin):
                        fmt = held  # challenger's win is inside the margin
            blocks.append(BlockDecision(c.lo, c.hi, fmt, cost=c))
        decision = TuneDecision(
            blocks=blocks,
            columns=int(columns),
            predicted={
                "csr": sum(c.csr_s for c in costs),
                "cbm": sum(c.cbm_s for c in costs),
                "routed": sum(
                    (c.cbm_s if b.fmt == "cbm" else c.csr_s)
                    for b, c in zip(blocks, costs)
                ),
            },
        )
        return decision
