"""Tune-soak: lying cost model + adversarial mutations vs live serving.

The robustness claim of the autotuner is *bitwise-correct serving and
throughput convergence under format misprediction*:

* a deliberately lying cost model (chaos-scaled to price one format
  ``lie_factor``× too fast) routes the initial plan to the wrong format;
  traffic fills the misprediction ring; the background
  :class:`~repro.autotune.watchdog.Retuner` must detect the residuals,
  re-tune honestly, and hot-swap — with **zero** wrong, hung, or dropped
  results across the re-plan;
* adversarial mutations (:meth:`~repro.autotune.chaos.TuneChaos.clique_batch`
  collapses a row window's deltas, :meth:`~repro.autotune.chaos.TuneChaos.scatter_batch`
  destroys row similarity) shift the workload mid-traffic; the drift
  trigger (:meth:`~repro.streaming.drift.DriftTracker.should_retune`)
  must arm and the retuner re-plan for the new structure;
* at the end, the *served* executor is raced against freshly measured
  pure-CSR and pure-CBM candidates: it must sit within
  ``convergence_tolerance`` of the best static format (the never-slower
  convergence check).

Verification is post-hoc and exact: operands are small integers in
float32, so every candidate executor (hybrid, CBM kernel, CSR kernel)
computes the same exactly-representable integer product in any
summation order — each served result must ``np.array_equal`` the CSR
reference product of the generation that served it.

``pin_format`` is the negative control: pinning the wrong format on the
mixed-structure graph disables re-tuning, so the convergence check must
*fail* — a soak that passes with a pinned wrong format is not testing
anything.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.autotune.chaos import TuneChaos
from repro.autotune.hybrid import WatchdogPolicy
from repro.autotune.router import RouterPolicy
from repro.autotune.tune import build_hybrid, tune
from repro.autotune.watchdog import Retuner
from repro.errors import OverloadError, ReproError, StalenessError
from repro.graphs.generators import mixed_structure_graph
from repro.serving.service import AdjacencySlot, InferenceService
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm
from repro.streaming.drift import DriftPolicy, DriftTracker
from repro.streaming.mutable import MutableAdjacency
from repro.streaming.rebuild import publish_snapshot

__all__ = ["run_tune_soak"]


def _integer_operands(n: int, columns: int, count: int, rng) -> list[np.ndarray]:
    """Small-integer float32 operands: exact in any summation order."""
    return [
        rng.integers(-3, 4, size=(n, columns)).astype(np.float32)
        for _ in range(count)
    ]


def _race_served_vs_static(slot: AdjacencySlot, b: np.ndarray, rounds: int = 9) -> dict:
    """Interleaved best-of race: the served executor vs fresh static kernels.

    One timing pass per candidate per round, round-robin, so slow
    machine-state drift (frequency scaling, a background thread winding
    down) hits every candidate equally instead of biasing whichever
    happened to be measured in the quieter window.  Sequential per-
    candidate passes were the dominant noise source in the convergence
    check: two quiet-time measurements seconds apart can disagree by
    ±20% on their own.
    """
    plan = slot.cbm.plan(update="level", scaling="deferred")
    cbm_out = plan.out_buffer(b.shape[1])
    hybrid = slot.hybrid
    hout = (
        hybrid.pool.acquire((hybrid.shape[0], b.shape[1]), np.float32)
        if hybrid is not None
        else None
    )

    def served():
        if hybrid is not None:
            hybrid.matmul(b, out=hout)
        else:
            plan.execute(b, out=cbm_out)

    thunks = {
        "served": served,
        "csr": lambda: spmm(slot.source, b),
    }
    if hybrid is not None:
        thunks["cbm"] = lambda: plan.execute(b, out=cbm_out)
    best: dict = {k: None for k in thunks}
    try:
        for _ in range(rounds):
            for k, fn in thunks.items():
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
                if best[k] is None or dt < best[k]:
                    best[k] = dt
    finally:
        plan.release(cbm_out)
        if hout is not None:
            hybrid.release(hout)
    # A slot with no hybrid serves the pure-CBM kernel already — timing
    # the same plan under a second label would only double its cache
    # warmth per round and flatter a mispinned format.
    best.setdefault("cbm", best["served"])
    return {k: float(v) for k, v in best.items()}


def run_tune_soak(
    a: CSRMatrix | None = None,
    *,
    seed: int = 11,
    columns: int = 8,
    clients: int = 3,
    requests_per_client: int = 60,
    mutation_batches: int = 3,
    scatter_edges: int = 64,
    lie_factor: float = 16.0,
    pin_format: str | None = None,
    convergence_tolerance: float = 0.15,
    retune_drift: float = 0.02,
    deadline_s: float = 10.0,
    min_requests: int = 120,
    progress=None,
) -> dict:
    """Run the format-tuning soak; returns a report dict with ``ok``.

    ``pin_format`` runs the negative control: the format is pinned, the
    retuner disabled, and a wrong pin must fail the convergence check.
    """

    def _say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    t_start = time.perf_counter()
    if a is None:
        a = mixed_structure_graph(768, seed=seed)
    n = a.shape[0]
    pinned = pin_format is not None

    tracker = DriftTracker(
        DriftPolicy(
            max_drift=100.0,  # no rebuilder in this soak; only the re-tune trigger
            staleness_budget=10_000,
            columns=2,
            retune_drift=retune_drift,
        )
    )
    mutable = MutableAdjacency.from_graph(a, alpha=0, tracker=tracker)
    version0, cbm0, source0 = mutable.snapshot()

    rng = np.random.default_rng(seed)
    operands = _integer_operands(n, columns, 8, rng)

    # ---------------- initial (sabotaged) tune ------------------------
    # measure=False hands the lying model the wheel: the router's
    # decision ships unverified, exactly the failure the watchdog exists
    # to catch.  The honest path (measure=True) would mask the lie by
    # racing candidates.
    chaos = None if pinned else TuneChaos(seed, lie_factor=lie_factor, victim="csr")
    policy0 = RouterPolicy(measure=False, pin=pin_format)
    report0 = tune(source0, cbm0, columns, policy=policy0, chaos=chaos)
    watchdog = WatchdogPolicy(window=16, tolerance=2.0, trigger_fraction=0.5, cooldown_s=0.2)
    slot0 = AdjacencySlot(cbm0, source0, tracker=tracker)
    slot0.graph_version = version0
    slot0.apply_tune(
        report0.decision,
        build_hybrid(cbm0, source0, report0.decision, model=report0.model, watchdog=watchdog),
        tuned_at=time.time(),
    )
    initial_route = slot0.route

    service = InferenceService(
        slot0,
        workers=2,
        queue_capacity=max(128, clients * 32),
        default_deadline_s=deadline_s,
        seed=seed,
    )

    refs: dict[int, CSRMatrix] = {0: source0}
    refs_lock = threading.Lock()
    orig_swap = service.swap_slot

    def _swap_hook(slot, **kwargs):
        result = orig_swap(slot, **kwargs)
        with refs_lock:
            refs[slot.generation] = slot.source
        return result

    service.swap_slot = _swap_hook

    retuner = None
    if not pinned:
        retuner = Retuner(
            service,
            columns=columns,
            policy=RouterPolicy(measure=True),
            watchdog=watchdog,
            chaos=chaos,  # lie already spent on tune 0: re-tunes are honest
            poll_interval_s=0.02,
            repeats=7,  # races must resolve ~20% gaps under client noise
        )

    rec_lock = threading.Lock()
    records: list[tuple[int, int, np.ndarray]] = []
    dropped = hung = errors = 0
    violations: list[str] = []

    def _client(offset: int, requests: int) -> None:
        nonlocal dropped, hung, errors
        for i in range(requests):
            idx = (offset + i) % len(operands)
            try:
                future = service.submit(operands[idx], deadline_s=deadline_s)
                y = future.result(timeout=deadline_s + 10.0)
            except OverloadError:
                with rec_lock:
                    dropped += 1
                    violations.append(f"request shed at offset {offset + i}")
                continue
            except TimeoutError:
                with rec_lock:
                    hung += 1
                    violations.append(f"request hung at offset {offset + i}")
                continue
            except ReproError as exc:
                with rec_lock:
                    errors += 1
                    violations.append(f"request failed: {type(exc).__name__}: {exc}")
                continue
            gen = future.generation if future.generation is not None else 0
            with rec_lock:
                records.append((gen, idx, y))

    with service:
        for fut in [service.submit(operands[i % len(operands)]) for i in range(4)]:
            fut.result(30.0)
        if retuner is not None:
            retuner.start()

        # ------------- phase 1: serve through the lie -----------------
        _say(f"storm: serving initial route {initial_route!r} from a lying model")
        threads = [
            threading.Thread(
                target=_client,
                args=(k * requests_per_client, requests_per_client),
                name=f"tunesoak-client-{k}",
            )
            for k in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Give the watchdog its window if traffic alone didn't: the ring
        # needs `window` samples *after* the last reset to trigger.
        if retuner is not None:
            deadline = time.monotonic() + 10.0
            while retuner.retunes == 0 and time.monotonic() < deadline:
                _client(0, 4)
                time.sleep(0.02)

        # ------------- phase 2: adversarial structure shift -----------
        if mutation_batches > 0 and not pinned:
            _say("shift: scatter mutations destroy the clique half's similarity")
            for j in range(mutation_batches):
                _, _, src = mutable.snapshot()
                batch = chaos.scatter_batch(src, 0, n // 2, edges=scatter_edges)
                try:
                    mutable.apply(batch)
                except StalenessError:
                    break
                publish_snapshot(mutable, service)  # swap hook registers the ref
                _client(j * 8, 8)
            retuner.poke()
            deadline = time.monotonic() + 10.0
            while (
                "drift" not in [r for r, _ in retuner.reports]
                and time.monotonic() < deadline
            ):
                _client(0, 2)
                time.sleep(0.02)
            _client(0, 3 * len(operands))

        # One forced re-tune after the clients drain: the drift re-tune
        # raced under full client contention, where measurement noise can
        # crown the wrong candidate.  Convergence is judged on a quiet
        # machine, so give the retuner one quiet race too — exactly what
        # its periodic cadence would do once traffic subsides.
        if retuner is not None:
            before = retuner.retunes
            retuner.trigger()
            deadline = time.monotonic() + 10.0
            while retuner.retunes == before and time.monotonic() < deadline:
                time.sleep(0.01)
            _client(0, len(operands))

        if retuner is not None:
            retuner.stop()
        health = service.health()
        final_slot = service.current_slot()
        served_route = final_slot.route
        # Race the served executor against freshly measured statics on
        # the final graph — the convergence / never-slower check.
        final_report = tune(
            final_slot.source,
            final_slot.cbm,
            columns,
            policy=RouterPolicy(measure=True),
        )
        probe = rng.integers(-3, 4, size=(n, columns)).astype(np.float32)
        race = _race_served_vs_static(final_slot, probe)
        served_s = race["served"]
        best_static_s = min(race["csr"], race["cbm"])

    # ---------------- post-hoc bitwise verification -------------------
    ok_count = wrong = 0
    for gen, idx, y in records:
        source = refs.get(gen)
        if source is None:
            wrong += 1
            violations.append(f"result labelled unpublished generation {gen}")
            continue
        if not np.array_equal(y, spmm(source, operands[idx])):
            wrong += 1
            violations.append(
                f"result does not bitwise-match generation {gen}'s reference "
                f"(operand {idx})"
            )
            continue
        ok_count += 1

    total = len(records) + dropped + hung + errors
    retune_reasons = [r for r, _ in retuner.reports] if retuner is not None else []
    retuner_errors = list(retuner.errors) if retuner is not None else []
    converged = served_s <= best_static_s * (1.0 + convergence_tolerance)

    checks = {
        "min_requests": total >= min_requests,
        "zero_wrong": wrong == 0,
        "zero_hung": hung == 0,
        "zero_dropped": dropped == 0,
        "zero_errors": errors == 0 and not retuner_errors,
        "converged_to_best_static": converged,
    }
    if not pinned:
        checks["misprediction_caught"] = "misprediction" in retune_reasons
        checks["drift_retune_fired"] = (
            mutation_batches == 0 or "drift" in retune_reasons
        )
        checks["chaos_lie_expired"] = not chaos.lying
    if not converged:
        violations.append(
            f"served route {served_route!r} measured {served_s:.6f}s vs best "
            f"static {best_static_s:.6f}s — outside {convergence_tolerance:.0%}"
        )

    return {
        "benchmark": "tune_soak",
        "workload": {
            "nodes": int(n),
            "nnz_initial": int(a.nnz),
            "columns": columns,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "mutation_batches": mutation_batches,
            "lie_factor": lie_factor,
            "pin_format": pin_format,
            "seed": seed,
        },
        "requests": total,
        "verified_ok": ok_count,
        "wrong": wrong,
        "hung": hung,
        "dropped": dropped,
        "errors": errors,
        "initial_route": initial_route,
        "served_route": served_route,
        "served_s": served_s,
        "best_static_s": best_static_s,
        "final_candidates": {k: float(v) for k, v in final_report.candidates.items()},
        "retunes": retuner.retunes if retuner is not None else 0,
        "retune_reasons": retune_reasons,
        "retuner_errors": [repr(e) for e in retuner_errors],
        "chaos": chaos.describe() if chaos is not None else None,
        "format_health": health.get("format"),
        "tracker": tracker.snapshot(),
        "checks": checks,
        "violations": violations,
        "elapsed_s": time.perf_counter() - t_start,
        "ok": all(checks.values()) and wrong == 0,
    }
