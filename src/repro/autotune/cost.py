"""Calibrated cost model scoring CBM vs CSR per degree-aware row block.

The router's question is local: *for this contiguous row block, is the
two-stage CBM kernel or the one-stage CSR kernel cheaper?*  The paper's
scalar-op counts (:mod:`repro.core.opcount`) answer it up to machine
constants; this module measures those constants once per tune on the
actual matrix, because the two terms the op counts cannot see are
exactly the two that decide real crossovers:

* the update stage is a *gather-add*, not a multiply-add — its per-op
  cost differs from the compiled CSR kernel's, so it is calibrated
  separately (a two-width probe isolates it from per-level overhead);
* each level of the schedule pays a fixed dispatch cost (fancy-index
  setup in :func:`~repro.runtime.plan.apply_level_schedule`), so a deep
  compression tree — a chain-structured block — can lose to CSR even
  when its delta count looks like a win.  This is the failure mode the
  misprediction watchdog exists to catch when the estimate is wrong
  anyway.

A :class:`~repro.parallel.cache.CacheModel` roofline bounds every
prediction from below: no block executes faster than its working set
streams from memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.core.opcount import OpCount, cbm_rows_spmm_ops, csr_rows_spmm_ops
from repro.core.tree import VIRTUAL
from repro.parallel.cache import CacheModel, WorkingSet
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import _as_scipy
from repro.utils.validation import check_positive

__all__ = ["BlockCost", "CostModel", "block_costs"]

#: Calibration floor — per-op rates below this are measurement noise on
#: an idle probe and would make every prediction zero.
_MIN_RATE = 1e-12


@dataclass(frozen=True)
class BlockCost:
    """Priced alternatives for one row block ``[lo, hi)``."""

    lo: int
    hi: int
    nnz: int
    delta_nnz: int
    tree_edges: int
    levels: int
    csr_ops: OpCount
    cbm_ops: OpCount
    csr_s: float
    cbm_s: float

    @property
    def rows(self) -> int:
        return self.hi - self.lo

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "rows": self.rows,
            "nnz": self.nnz,
            "delta_nnz": self.delta_nnz,
            "tree_edges": self.tree_edges,
            "levels": self.levels,
            "csr_ops": self.csr_ops.total,
            "cbm_ops": self.cbm_ops.total,
            "predicted_csr_s": self.csr_s,
            "predicted_cbm_s": self.cbm_s,
        }


@dataclass(frozen=True)
class CostModel:
    """Machine constants mapping scalar-op counts to seconds.

    ``sec_per_op_csr`` prices compiled CSR multiply-adds (shared by the
    CBM multiplication stage, which runs the same kernel on the delta
    CSR); ``sec_per_op_update`` prices the level schedule's gather-adds;
    ``sec_per_level`` is the fixed dispatch cost of one level batch;
    ``sec_per_call`` the fixed cost of one block-kernel dispatch.
    """

    sec_per_op_csr: float
    sec_per_op_update: float
    sec_per_level: float
    sec_per_call: float
    machine: MachineSpec = XEON_GOLD_6130
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        a: CSRMatrix,
        cbm: CBMMatrix,
        *,
        columns: int = 32,
        repeats: int = 3,
        machine: MachineSpec = XEON_GOLD_6130,
    ) -> "CostModel":
        """Measure the four rates on the actual matrix being tuned.

        The update-stage probe runs at two widths; the per-op and
        per-level components separate because the op term is linear in
        width while the dispatch term is constant.
        """
        check_positive(columns, "columns")
        check_positive(repeats, "repeats")
        rng = np.random.default_rng(0)
        p1 = max(2, int(columns))
        p2 = max(1, p1 // 2)
        b1 = rng.standard_normal((a.shape[1], p1)).astype(np.float32)

        # Probe exactly the way a hybrid CSR block executes — raw scipy
        # product on a pre-converted handle — not through the spmm()
        # wrapper, whose per-call validation/allocation overhead would
        # fold into the per-op rate and swamp it on small matrices.
        handle = _as_scipy(a)
        t_csr = _best(lambda: handle @ b1, repeats)
        csr_ops = csr_rows_spmm_ops(a.nnz, p1).total
        r_csr = max(t_csr / max(csr_ops, 1), _MIN_RATE)

        plan = cbm.plan(update="level", scaling="deferred")
        edges = int(sum(len(lv) for lv, _ in plan.level_pairs))
        levels = len(plan.level_pairs)

        def _update_time(p: int) -> float:
            c = rng.standard_normal((plan.shape[0], p)).astype(np.float32)
            best = None
            for _ in range(repeats):
                work = c.copy()
                t0 = time.perf_counter()
                plan.apply_update(work)
                dt = time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
            return float(best)

        if edges:
            t1, t2 = _update_time(p1), _update_time(p2)
            ops1 = plan.scalar_ops(p1).update_stage
            ops2 = plan.scalar_ops(p2).update_stage
            r_upd = (t1 - t2) / max(ops1 - ops2, 1)
            r_upd = max(r_upd, _MIN_RATE)
            c_level = max((t1 - ops1 * r_upd) / max(levels, 1), 0.0)
        else:  # forest of roots: no update stage to probe
            r_upd = 2.0 * r_csr
            c_level = 0.0

        tiny = CSRMatrix(
            np.array([0, 1], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.ones(1, dtype=np.float32),
            (1, 1),
            check=False,
        )
        tiny_handle = _as_scipy(tiny)
        tiny_b = np.ones((1, 1), dtype=np.float32)
        c_call = _best(lambda: tiny_handle @ tiny_b, max(repeats, 5))

        return cls(
            sec_per_op_csr=r_csr,
            sec_per_op_update=r_upd,
            sec_per_level=c_level,
            sec_per_call=c_call,
            machine=machine,
            meta={
                "columns": p1,
                "repeats": repeats,
                "probe_csr_s": t_csr,
                "probe_levels": levels,
                "probe_tree_edges": edges,
            },
        )

    # ------------------------------------------------------------------
    def _floor(self, sparse_bytes: int, rows: int, n_cols: int, p: int) -> float:
        dense = 4 * (rows + n_cols) * max(p, 1)
        ws = WorkingSet(sparse_bytes=max(int(sparse_bytes), 0), dense_bytes=int(dense))
        return CacheModel(self.machine).bandwidth_time(ws, cores_used=1)

    def predict_csr(self, nnz: int, p: int, *, rows: int = 0, n_cols: int = 0) -> float:
        """Predicted seconds for a CSR block SpMM at width ``p``."""
        ops = csr_rows_spmm_ops(nnz, p)
        t = ops.total * self.sec_per_op_csr + self.sec_per_call
        return max(t, self._floor(8 * nnz + 4 * (rows + 1), rows, n_cols, p))

    def predict_cbm(
        self,
        delta_nnz: int,
        tree_edges: int,
        levels: int,
        p: int,
        *,
        variant: str = "A",
        rows: int = 0,
        n_cols: int = 0,
    ) -> float:
        """Predicted seconds for a CBM block (multiply + update) at width ``p``."""
        ops = cbm_rows_spmm_ops(delta_nnz, tree_edges, p, variant=variant)
        t = (
            ops.multiply_stage * self.sec_per_op_csr
            + ops.update_stage * self.sec_per_op_update
            + levels * self.sec_per_level
            + self.sec_per_call
        )
        floor = self._floor(
            8 * delta_nnz + 4 * (rows + 1) + 8 * tree_edges, rows, n_cols, p
        )
        return max(t, floor)

    def scaled(self, *, csr: float = 1.0, cbm: float = 1.0) -> "CostModel":
        """A copy with per-format rates scaled — the chaos injector's lever."""
        return replace(
            self,
            sec_per_op_csr=self.sec_per_op_csr * csr,
            sec_per_op_update=self.sec_per_op_update * cbm,
            sec_per_level=self.sec_per_level * cbm,
            meta={**self.meta, "scaled": {"csr": csr, "cbm": cbm}},
        )

    def to_dict(self) -> dict:
        return {
            "sec_per_op_csr": self.sec_per_op_csr,
            "sec_per_op_update": self.sec_per_op_update,
            "sec_per_level": self.sec_per_level,
            "sec_per_call": self.sec_per_call,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CostModel":
        """Rebuild a model persisted in a generation's ``autotune`` meta."""
        return cls(
            sec_per_op_csr=float(d["sec_per_op_csr"]),
            sec_per_op_update=float(d["sec_per_op_update"]),
            sec_per_level=float(d["sec_per_level"]),
            sec_per_call=float(d["sec_per_call"]),
            meta=dict(d.get("meta", {})),
        )


def _best(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return float(best)


# ---------------------------------------------------------------------------
# Per-block pricing from the global compression tree
# ---------------------------------------------------------------------------

def block_costs(
    a: CSRMatrix,
    cbm: CBMMatrix,
    bounds: list[tuple[int, int]],
    columns: int,
    model: CostModel,
) -> list[BlockCost]:
    """Price CBM-vs-CSR for every block without building block trees.

    A block executed standalone keeps only the parent links that stay
    inside it; a row whose parent falls outside becomes a root and its
    delta set grows to its full nnz (the same restriction
    :class:`~repro.parallel.shard.ShardedPlan` applies physically).
    This estimate is conservative for CBM — ``build_cbm`` on the slice
    may find a better tree — which is the safe direction for a router
    whose mispredictions the watchdog must catch.
    """
    check_positive(columns, "columns")
    n = a.shape[0]
    parent = cbm.tree.parent
    weight = cbm.tree.weight
    row_nnz = a.row_nnz()
    variant = cbm.variant.value

    block_of = np.full(n, -1, dtype=np.int64)
    for i, (lo, hi) in enumerate(bounds):
        block_of[lo:hi] = i

    has_parent = parent != VIRTUAL
    safe_parent = np.where(has_parent, parent, 0)
    in_block = has_parent & (block_of[safe_parent] == block_of)
    deltas = np.where(in_block, weight, row_nnz)

    # Depth of each row inside its block (0 for rows that become roots);
    # one pass in parents-before-children order.
    depth = np.zeros(n, dtype=np.int64)
    for x in cbm.tree.topological_order():
        if in_block[x]:
            depth[x] = depth[parent[x]] + 1

    out = []
    for lo, hi in bounds:
        lo, hi = int(lo), int(hi)
        nnz = int(row_nnz[lo:hi].sum())
        d_nnz = int(deltas[lo:hi].sum())
        edges = int(in_block[lo:hi].sum())
        levels = int(depth[lo:hi].max()) if hi > lo else 0
        csr_ops = csr_rows_spmm_ops(nnz, columns)
        cbm_ops = cbm_rows_spmm_ops(d_nnz, edges, columns, variant=variant)
        out.append(
            BlockCost(
                lo=lo,
                hi=hi,
                nnz=nnz,
                delta_nnz=d_nnz,
                tree_edges=edges,
                levels=levels,
                csr_ops=csr_ops,
                cbm_ops=cbm_ops,
                csr_s=model.predict_csr(nnz, columns, rows=hi - lo, n_cols=a.shape[1]),
                cbm_s=model.predict_cbm(
                    d_nnz,
                    edges,
                    levels,
                    columns,
                    variant=variant,
                    rows=hi - lo,
                    n_cols=a.shape[1],
                ),
            )
        )
    return out
