"""Adaptive format selection: never slower than the best static format.

The paper's compression wins are structural — clique-heavy graphs
compress 5×+, while low-similarity or chain-structured graphs leave CBM
at or behind CSR (its own Table II shows ratios as low as 1.04).  A
production service cannot pick one format at deploy time and hope; this
package makes the choice *per degree-aware row block, from measured
machine constants, continuously revalidated under traffic*:

* :mod:`~repro.autotune.cost` — a calibrated cost model pricing CBM vs
  CSR per block from the paper's scalar-op counts, a cache-model
  roofline, and the two measured constants op counts cannot see
  (gather-add rate, per-level dispatch overhead);
* :mod:`~repro.autotune.router` — block decisions with hysteresis, a
  collapse rule for single-format graphs, and a JSON-safe block map
  committed alongside each generation;
* :mod:`~repro.autotune.hybrid` — the :class:`HybridPlan` executor
  (per-block rectangular CBMs + compiled CSR row slices stitched into
  one output) and the :class:`TuneStats` misprediction ring;
* :mod:`~repro.autotune.tune` — the calibrate → route → race-candidates
  entry point whose measured winner *is* the never-slower guarantee;
* :mod:`~repro.autotune.watchdog` — the background :class:`Retuner`
  publishing re-tuned plans through the generation store + hot swap;
* :mod:`~repro.autotune.chaos` / :mod:`~repro.autotune.soak` — seeded
  lying-cost-model and format-flipping mutation injectors, and the
  tune-soak proving bitwise-correct serving through all of it.
"""

from repro.autotune.chaos import TuneChaos
from repro.autotune.cost import BlockCost, CostModel, block_costs
from repro.autotune.hybrid import (
    HybridAdjacency,
    HybridPlan,
    TuneStats,
    WatchdogPolicy,
)
from repro.autotune.router import (
    BlockDecision,
    FormatRouter,
    RouterPolicy,
    TuneDecision,
)
from repro.autotune.soak import run_tune_soak
from repro.autotune.tune import TuneReport, build_hybrid, tune
from repro.autotune.watchdog import Retuner

__all__ = [
    "BlockCost",
    "BlockDecision",
    "CostModel",
    "FormatRouter",
    "HybridAdjacency",
    "HybridPlan",
    "Retuner",
    "RouterPolicy",
    "TuneChaos",
    "TuneDecision",
    "TuneReport",
    "TuneStats",
    "WatchdogPolicy",
    "block_costs",
    "build_hybrid",
    "run_tune_soak",
    "tune",
]
