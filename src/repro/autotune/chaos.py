"""Seeded chaos for the autotuner: lying cost models, format-flipping edits.

Two attack surfaces, both deterministic under a seed so soak failures
replay exactly:

* :meth:`TuneChaos.wrap` hands the router a cost model that prices one
  format ``lie_factor``× *too fast* — the router confidently routes to
  the mispriced format, and the served plan's predictions are optimistic
  by ~``lie_factor``.  That optimism is precisely the watchdog's signal:
  measured ≫ predicted fills the :class:`~repro.autotune.hybrid.TuneStats`
  ring until the re-tune trigger fires.  The lie expires after
  ``lie_tunes`` tunes, so the recovery re-tune is honest.
* :meth:`TuneChaos.clique_batch` / :meth:`TuneChaos.scatter_batch` build
  adversarial :class:`~repro.streaming.mutable.EdgeBatch` mutations that
  flip a row window's best format mid-traffic: a clique makes the rows
  near-identical (CBM-friendly — deltas collapse), a random scatter
  destroys row similarity (CSR-friendly — every row becomes a root).
"""

from __future__ import annotations

import numpy as np

from repro.autotune.cost import CostModel
from repro.sparse.csr import CSRMatrix
from repro.streaming.mutable import EdgeBatch
from repro.utils.validation import check_positive

__all__ = ["TuneChaos"]


class TuneChaos:
    """Deterministic fault injector for format tuning."""

    def __init__(
        self,
        seed: int,
        *,
        lie_factor: float = 8.0,
        lie_tunes: int = 1,
        victim: str | None = None,
    ):
        if lie_factor <= 1.0:
            raise ValueError(f"lie_factor must exceed 1.0, got {lie_factor}")
        if lie_tunes < 0:
            raise ValueError(f"lie_tunes must be non-negative, got {lie_tunes}")
        if victim not in (None, "csr", "cbm"):
            raise ValueError(f"victim must be 'csr', 'cbm' or None, got {victim!r}")
        self.seed = int(seed)
        self.lie_factor = float(lie_factor)
        self.lie_tunes = int(lie_tunes)
        self.victim = victim
        self._rng = np.random.default_rng(seed)
        self._tunes_seen = 0
        self.log: list[dict] = []

    # ------------------------------------------------------------------
    def wrap(self, model: CostModel) -> CostModel:
        """Possibly-lying view of ``model``; honest once the lies expire."""
        index = self._tunes_seen
        self._tunes_seen += 1
        if index >= self.lie_tunes:
            self.log.append({"tune": index, "lie": None})
            return model
        # Price the victim lie_factor× too FAST: the router routes to it
        # and the served plan's predictions are optimistic by the same
        # factor — the residual the misprediction watchdog must catch.
        victim = self.victim or ("csr" if self._rng.random() < 0.5 else "cbm")
        optimistic = 1.0 / self.lie_factor
        scaled = (
            model.scaled(csr=optimistic)
            if victim == "csr"
            else model.scaled(cbm=optimistic)
        )
        self.log.append({"tune": index, "lie": victim, "factor": self.lie_factor})
        return scaled

    @property
    def lying(self) -> bool:
        return self._tunes_seen < self.lie_tunes

    # ------------------------------------------------------------------
    def clique_batch(self, a: CSRMatrix, lo: int, hi: int, *, size: int = 12) -> EdgeBatch:
        """Insert a clique over ``size`` rows sampled from ``[lo, hi)``.

        The rows become near-identical, collapsing their pairwise delta
        distance — a CSR-routed block's best format flips toward CBM.
        """
        check_positive(size, "size")
        rows = self._sample_rows(a, lo, hi, size)
        pairs = [
            (int(u), int(v)) for i, u in enumerate(rows) for v in rows[i + 1:]
        ]
        edges = np.asarray(
            [(u, v) for u, v in pairs] + [(v, u) for u, v in pairs], dtype=np.int64
        )
        return EdgeBatch(inserts=edges)

    def scatter_batch(
        self, a: CSRMatrix, lo: int, hi: int, *, edges: int = 48
    ) -> EdgeBatch:
        """Scatter random edges from rows in ``[lo, hi)`` to random columns.

        Random endpoints destroy row similarity: patched rows' delta
        sets grow toward their nnz, pushing the block toward CSR.
        """
        check_positive(edges, "edges")
        n = a.shape[1]
        rows = self._rng.integers(lo, hi, size=edges)
        cols = self._rng.integers(0, n, size=edges)
        keep = rows != cols
        pairs = np.stack([rows[keep], cols[keep]], axis=1).astype(np.int64)
        return EdgeBatch(inserts=pairs)

    def _sample_rows(self, a: CSRMatrix, lo: int, hi: int, size: int) -> np.ndarray:
        lo, hi = int(lo), int(hi)
        if not 0 <= lo < hi <= a.shape[0]:
            raise ValueError(f"row window [{lo}, {hi}) out of range for {a.shape}")
        size = min(size, hi - lo)
        return self._rng.choice(np.arange(lo, hi), size=size, replace=False)

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "lie_factor": self.lie_factor,
            "lie_tunes": self.lie_tunes,
            "victim": self.victim,
            "tunes_seen": self._tunes_seen,
            "lying": self.lying,
            "log": list(self.log),
        }
