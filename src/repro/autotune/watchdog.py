"""Background re-tuning: detect sustained misprediction, re-plan, republish.

The :class:`Retuner` is the autotuner's analogue of
:class:`~repro.streaming.rebuild.BackgroundRebuilder`, and deliberately
shares its shape (trigger-poll daemon loop, synchronous ``*_once`` entry
point, errors list kept alive).  It fires on three signals:

* the serving slot's :class:`~repro.autotune.hybrid.TuneStats` ring says
  measured execution has sustainedly diverged from the plan's
  predictions (the misprediction watchdog);
* the slot's :class:`~repro.streaming.drift.DriftTracker` reports
  compression-quality decay past its re-tune threshold — structure
  shifted enough that the format decision, not just the tree, is stale;
* an explicit :meth:`trigger`.

Publication reuses the existing durability machinery end to end: the
current CBM is committed to the :class:`~repro.recovery.GenerationStore`
with the new decision in the generation's ``meta["autotune"]``, then
:meth:`~repro.serving.InferenceService.swap_generation` loads, attaches
the hybrid from that meta, and swaps — in-flight requests finish on the
old slot, so no request is dropped mid-re-tune.  Without a store the
retuner swaps an in-memory slot through the same ``swap_slot`` contract.
"""

from __future__ import annotations

import threading
import time

from repro.autotune.chaos import TuneChaos
from repro.autotune.hybrid import WatchdogPolicy
from repro.autotune.router import RouterPolicy
from repro.autotune.tune import TuneReport, build_hybrid, tune
from repro.core.io import save_cbm
from repro.errors import ReproError, ServingError
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec

__all__ = ["Retuner"]


class Retuner:
    """Watch a serving slot's tuning health; re-tune and republish off-path."""

    def __init__(
        self,
        service,
        store=None,
        *,
        columns: int,
        policy: RouterPolicy | None = None,
        watchdog: WatchdogPolicy | None = None,
        chaos: TuneChaos | None = None,
        machine: MachineSpec = XEON_GOLD_6130,
        payload: str = "adjacency.npz",
        poll_interval_s: float = 0.05,
        repeats: int = 3,
    ):
        self.service = service
        self.store = store
        self.columns = int(columns)
        self.policy = policy or RouterPolicy()
        self.watchdog = watchdog or WatchdogPolicy()
        self.chaos = chaos
        self.machine = machine
        self.payload = payload
        self.poll_interval_s = float(poll_interval_s)
        self.repeats = int(repeats)
        self.reports: list[tuple[str, TuneReport]] = []
        self.errors: list[Exception] = []
        self.retunes = 0
        self.last_retune_at: float | None = None
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._forced = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def check_once(self) -> str | None:
        """Return the re-tune reason if any trigger is live, else ``None``."""
        if self._forced.is_set():
            self._forced.clear()
            return "trigger"
        slot = self.service.current_slot()
        hybrid = getattr(slot, "hybrid", None)
        if hybrid is not None and hybrid.stats.should_retune():
            return "misprediction"
        tracker = getattr(slot, "tracker", None)
        if tracker is not None and getattr(tracker, "should_retune", None):
            if tracker.should_retune():
                tracker.consume_retune()
                return "drift"
        return None

    def retune_once(self, reason: str = "manual") -> TuneReport:
        """Tune against the current slot and publish the winning route."""
        slot = self.service.current_slot()
        report = tune(
            slot.source,
            slot.cbm,
            self.columns,
            policy=self.policy,
            chaos=self.chaos,
            incumbent=getattr(slot, "tune_decision", None),
            machine=self.machine,
            repeats=self.repeats,
        )
        meta = report.decision.to_meta()
        meta["tuned_at"] = time.time()
        meta["model"] = report.model.to_dict()
        meta["reason"] = reason
        if self.store is not None:
            with self.store.begin(
                meta={
                    "kind": "cbm-archive",
                    "autotune": meta,
                    "graph_version": getattr(slot, "graph_version", None),
                }
            ) as txn:
                save_cbm(txn.path(self.payload, kind="cbm"), slot.cbm)
            self.service.swap_generation(store=self.store, payload=self.payload)
        else:
            from repro.serving.service import AdjacencySlot

            fresh = AdjacencySlot(
                slot.cbm, slot.source, tracker=getattr(slot, "tracker", None)
            )
            fresh.graph_version = getattr(slot, "graph_version", None)
            fresh.apply_tune(
                report.decision,
                build_hybrid(
                    slot.cbm,
                    slot.source,
                    report.decision,
                    model=report.model,
                    watchdog=self.watchdog,
                ),
                tuned_at=meta["tuned_at"],
            )
            self.service.swap_slot(fresh)
        self.service.note_retune(reason=reason, report=report)
        with self._lock:
            self.reports.append((reason, report))
            self.retunes += 1
            self.last_retune_at = meta["tuned_at"]
        return report

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise ServingError("retuner already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cbm-retuner", daemon=True
        )
        self._thread.start()

    def trigger(self) -> None:
        """Request an immediate re-tune (threaded mode)."""
        self._forced.set()
        self._wake.set()

    def poke(self) -> None:
        """Wake the loop to re-check its triggers without forcing one —
        used by the rebuilder when it sees the drift trigger arm, so the
        retuner (which owns consuming it) reacts without waiting a poll."""
        self._wake.set()

    def stop(self, timeout: float = 30.0) -> None:
        self._stop.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.poll_interval_s)
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                reason = self.check_once()
                if reason is not None:
                    self.retune_once(reason)
            except (ReproError, OSError) as exc:
                # A failed re-tune leaves the incumbent plan serving —
                # strictly a quality regression, never a correctness one.
                with self._lock:
                    self.errors.append(exc)

    def describe(self) -> dict:
        with self._lock:
            return {
                "retunes": self.retunes,
                "last_retune_at": self.last_retune_at,
                "errors": len(self.errors),
                "reasons": [r for r, _ in self.reports],
                "columns": self.columns,
            }
