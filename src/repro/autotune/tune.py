"""The tune entry point: calibrate, route, verify by measurement.

``tune()`` is deliberately belt-and-braces: the cost model proposes a
block map, and (unless measurement is disabled) the candidate routes are
then *raced* on the live matrix — pure CSR, pure CBM, and the hybrid if
the router produced one — with the winner chosen on measured seconds.
The never-slower guarantee is therefore structural: the served plan is
whichever candidate actually won on this machine, and the cost model
only decides *which* hybrid block map gets to compete.  When measurement
is off (background re-tunes under tight budgets, or a chaos-lying model
in the soak), the watchdog's measured-vs-predicted residuals are the
backstop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.autotune.chaos import TuneChaos
from repro.autotune.cost import CostModel, _best
from repro.autotune.hybrid import HybridPlan, TuneStats, WatchdogPolicy
from repro.autotune.router import FormatRouter, RouterPolicy, TuneDecision
from repro.core.cbm import CBMMatrix
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm
from repro.utils.validation import check_positive

__all__ = ["TuneReport", "build_hybrid", "tune"]


@dataclass
class TuneReport:
    """Everything one tune run decided and why."""

    decision: TuneDecision
    model: CostModel
    candidates: dict = field(default_factory=dict)  # route -> measured seconds
    chosen: str = "cbm"
    measured: bool = True
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "chosen": self.chosen,
            "route": self.decision.route,
            "columns": self.decision.columns,
            "measured": self.measured,
            "seconds": self.seconds,
            "candidates": {k: float(v) for k, v in self.candidates.items()},
            "predicted": {k: float(v) for k, v in self.decision.predicted.items()},
            "blocks": [b.to_dict() for b in self.decision.blocks],
            "model": self.model.to_dict(),
        }


def _pattern(source: CSRMatrix) -> CSRMatrix:
    if source.is_binary():
        return source
    return CSRMatrix(
        source.indptr,
        source.indices,
        np.ones(source.nnz, dtype=np.float32),
        source.shape,
        check=False,
    )


def tune(
    source: CSRMatrix,
    cbm: CBMMatrix,
    columns: int,
    *,
    policy: RouterPolicy | None = None,
    model: CostModel | None = None,
    machine: MachineSpec = XEON_GOLD_6130,
    chaos: TuneChaos | None = None,
    incumbent: TuneDecision | None = None,
    repeats: int = 3,
) -> TuneReport:
    """Pick the serving route for ``(source, cbm)`` at the given width.

    ``source`` is the weighted CSR reference of the represented product
    (``AdjacencySlot.source``); ``cbm`` the full-matrix CBM.  Returns a
    :class:`TuneReport` whose ``decision`` reflects the *chosen* route —
    a pure winner overrides a hybrid block map that lost the race.
    """
    check_positive(columns, "columns")
    check_positive(repeats, "repeats")
    t_start = time.perf_counter()
    policy = policy or RouterPolicy()
    a = _pattern(source)
    if model is None:
        model = CostModel.calibrate(a, cbm, columns=columns, machine=machine)
    if chaos is not None:
        model = chaos.wrap(model)

    router = FormatRouter(model)
    decision = router.decide(a, cbm, columns, policy=policy, incumbent=incumbent)

    candidates: dict[str, float] = {}
    chosen = decision.route
    if policy.measure and policy.pin is None:
        rng = np.random.default_rng(0)
        b = rng.standard_normal((source.shape[1], columns)).astype(np.float32)
        candidates["csr"] = _best(lambda: spmm(source, b), repeats)
        plan = cbm.plan(update="level", scaling="deferred")
        out = plan.out_buffer(columns)
        try:
            candidates["cbm"] = _best(lambda: plan.execute(b, out=out), repeats)
        finally:
            plan.release(out)
        if decision.route == "hybrid":
            hybrid = HybridPlan(cbm, source, decision, model=model)
            hout = hybrid.pool.acquire((source.shape[0], columns), np.float32)
            try:
                candidates["hybrid"] = _best(
                    lambda: hybrid.matmul(b, out=hout), repeats
                )
            finally:
                hybrid.release(hout)
                hybrid.drain()
        chosen = min(candidates, key=candidates.get)
        # Hysteresis on the route itself: keep the incumbent route when
        # the winner's measured margin is inside the policy margin.
        held = incumbent.route if incumbent is not None else None
        if (
            held is not None
            and held != chosen
            and held in candidates
            and candidates[chosen] > candidates[held] * (1.0 - policy.margin)
        ):
            chosen = held
        if chosen != "hybrid" and decision.route != chosen:
            decision = TuneDecision.pure(chosen, source.shape[0], columns)
            decision.predicted = dict(
                router.decide(a, cbm, columns, policy=policy).predicted
            )
    elif policy.pin is not None:
        decision = TuneDecision.pure(policy.pin, source.shape[0], columns)
        chosen = policy.pin

    return TuneReport(
        decision=decision,
        model=model,
        candidates=candidates,
        chosen=chosen,
        measured=bool(candidates),
        seconds=time.perf_counter() - t_start,
    )


def build_hybrid(
    cbm: CBMMatrix,
    source: CSRMatrix,
    decision: TuneDecision,
    *,
    model: CostModel | None = None,
    watchdog: WatchdogPolicy | None = None,
) -> HybridPlan | None:
    """Materialise the executor for a decision.

    Returns ``None`` for the pure-CBM route — the serving tier then uses
    its normal (guarded) kernel path, keeping the breaker ladder exactly
    as it was.  Pure-CSR and hybrid routes get a :class:`HybridPlan`
    (a pure-CSR decision is a one-block hybrid).
    """
    if decision.route == "cbm":
        return None
    stats = TuneStats(watchdog) if watchdog is not None else TuneStats()
    return HybridPlan(cbm, source, decision, model=model, stats=stats)
