"""The hybrid CBM/CSR operator and its misprediction watchdog state.

A :class:`HybridPlan` executes a :class:`~repro.autotune.router.TuneDecision`:
every CBM-routed block gets its own rectangular block CBM (built exactly
the way :class:`~repro.parallel.shard.ShardedPlan` builds shard trees,
so the §V-B independence argument carries over) executed through a
per-block :class:`~repro.runtime.plan.KernelPlan`; every CSR-routed
block keeps a contiguous row slice of the weighted source matrix and
runs the compiled CSR kernel.  All blocks write disjoint row spans of
one pooled output buffer — the same stitch discipline the shard
supervisor uses, which is what the ``lower_hybrid_plan`` static audit
verifies.

Every ``matmul`` records measured-vs-predicted seconds per block into a
:class:`TuneStats` ring; :meth:`TuneStats.should_retune` is the bounded
hysteresis trigger the background :class:`~repro.autotune.watchdog.Retuner`
polls.  Predictions are affine in the operand width (op terms scale,
dispatch terms do not), so one tuned decision prices every request width.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.autotune.cost import CostModel
from repro.autotune.router import TuneDecision
from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix, Variant
from repro.errors import ShapeError
from repro.runtime.buffers import WorkspacePool
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import _as_scipy
from repro.utils.validation import check_dense, check_positive

__all__ = ["HybridAdjacency", "HybridPlan", "TuneStats", "WatchdogPolicy"]


@dataclass(frozen=True)
class WatchdogPolicy:
    """Bounded-hysteresis trigger for the misprediction watchdog.

    A *miss* is one execution whose measured/predicted ratio exceeds
    ``tolerance``.  The trigger fires only when the ring holds a full
    ``window`` of samples, at least ``trigger_fraction`` of them are
    misses, and ``cooldown_s`` has passed since the last re-tune — so a
    single slow request (GC pause, noisy neighbour) can never force a
    re-plan, and re-tunes cannot cascade.
    """

    window: int = 32
    tolerance: float = 1.75
    trigger_fraction: float = 0.5
    cooldown_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.window, "window")
        if self.tolerance <= 1.0:
            raise ValueError(f"tolerance must exceed 1.0, got {self.tolerance}")
        if not 0.0 < self.trigger_fraction <= 1.0:
            raise ValueError(
                f"trigger_fraction must be in (0, 1], got {self.trigger_fraction}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be non-negative, got {self.cooldown_s}")


class TuneStats:
    """Thread-safe ring of measured-vs-predicted execution timings."""

    def __init__(self, policy: WatchdogPolicy | None = None, *, clock=time.monotonic):
        self.policy = policy or WatchdogPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[float] = deque(maxlen=self.policy.window)
        self.executions = 0
        self.mispredictions = 0
        self._last_reset = clock()

    def record(self, predicted_s: float, measured_s: float) -> None:
        ratio = measured_s / predicted_s if predicted_s > 0 else float("inf")
        with self._lock:
            self._ring.append(ratio)
            self.executions += 1
            if ratio > self.policy.tolerance:
                self.mispredictions += 1

    def misprediction_ratio(self) -> float:
        """Fraction of the current window counting as misses."""
        with self._lock:
            if not self._ring:
                return 0.0
            tol = self.policy.tolerance
            return sum(1 for r in self._ring if r > tol) / len(self._ring)

    def should_retune(self) -> bool:
        with self._lock:
            if len(self._ring) < self.policy.window:
                return False
            if self._clock() - self._last_reset < self.policy.cooldown_s:
                return False
            tol = self.policy.tolerance
            misses = sum(1 for r in self._ring if r > tol)
            return misses / len(self._ring) >= self.policy.trigger_fraction

    def reset(self) -> None:
        """Clear the window after a re-tune — old residuals priced the old plan."""
        with self._lock:
            self._ring.clear()
            self._last_reset = self._clock()

    def snapshot(self) -> dict:
        with self._lock:
            ring = list(self._ring)
        tol = self.policy.tolerance
        return {
            "executions": self.executions,
            "mispredictions": self.mispredictions,
            "window_fill": len(ring),
            "window": self.policy.window,
            "window_miss_ratio": (
                sum(1 for r in ring if r > tol) / len(ring) if ring else 0.0
            ),
            "median_ratio": float(np.median(ring)) if ring else None,
        }


# ---------------------------------------------------------------------------
# Block executors
# ---------------------------------------------------------------------------

class _CsrBlock:
    """One CSR-routed block: compiled SpMM on a contiguous row slice."""

    fmt = "csr"

    def __init__(self, lo: int, hi: int, rows: CSRMatrix, model: CostModel | None):
        self.lo, self.hi = lo, hi
        self._rows = rows
        self._handle = _as_scipy(rows)
        if model is not None:
            self.var_s = 2 * rows.nnz * model.sec_per_op_csr
            self.fixed_s = model.sec_per_call
        else:
            self.var_s = self.fixed_s = 0.0

    def execute(self, b: np.ndarray, out: np.ndarray) -> None:
        """Write this block's rows of ``M @ b`` into ``out`` in place."""
        out[self.lo:self.hi] = self._handle @ b

    def execute_vec(self, v: np.ndarray, out: np.ndarray) -> None:
        """Write this block's rows of ``M @ v`` into ``out`` in place."""
        out[self.lo:self.hi] = self._handle @ v

    def describe(self) -> dict:
        return {"lo": self.lo, "hi": self.hi, "format": "csr", "nnz": self._rows.nnz}


class _CbmBlock:
    """One CBM-routed block: a rectangular block CBM behind a KernelPlan."""

    fmt = "cbm"

    def __init__(self, lo: int, hi: int, plan, model: CostModel | None):
        self.lo, self.hi = lo, hi
        self.plan = plan
        if model is not None:
            per_col = plan.scalar_ops(1)
            self.var_s = (
                per_col.multiply_stage * model.sec_per_op_csr
                + per_col.update_stage * model.sec_per_op_update
            )
            self.fixed_s = plan.levels * model.sec_per_level + model.sec_per_call
        else:
            self.var_s = self.fixed_s = 0.0

    def execute(self, b: np.ndarray, out: np.ndarray) -> None:
        """Write this block's rows of ``M @ b`` into ``out`` in place."""
        self.plan.execute(b, out=out[self.lo:self.hi])

    def execute_vec(self, v: np.ndarray, out: np.ndarray) -> None:
        """Write this block's rows of ``M @ v`` into ``out`` in place."""
        out[self.lo:self.hi] = self.plan.execute_vec(v)

    def describe(self) -> dict:
        d = self.plan.describe()
        return {
            "lo": self.lo,
            "hi": self.hi,
            "format": "cbm",
            "delta_nnz": d["operand_nnz"],
            "levels": d["levels"],
            "tree_edges": d["tree_edges"],
        }


# ---------------------------------------------------------------------------
# The hybrid plan
# ---------------------------------------------------------------------------

class HybridPlan:
    """Executes a block map: CBM kernels and CSR kernels stitched per row span.

    Parameters
    ----------
    cbm:
        The full-matrix CBM the decision was made against; supplies the
        variant and diagonal vectors for block-tree construction.
    source:
        The weighted CSR reference of the represented product ``M`` (the
        same matrix the serving tier's degraded path multiplies), so a
        CSR-routed block's rows are exactly ``M[lo:hi]``.
    decision:
        The router's block map; must tile ``[0, n)``.
    """

    def __init__(
        self,
        cbm: CBMMatrix,
        source: CSRMatrix,
        decision: TuneDecision,
        *,
        update: str = "level",
        scaling: str = "deferred",
        model: CostModel | None = None,
        stats: TuneStats | None = None,
    ):
        if source.shape[0] != cbm.tree.n:
            raise ShapeError.mismatch("hybrid source", source.shape, (cbm.tree.n,))
        self._validate_cover(decision, source.shape[0])
        self.shape = source.shape
        self.decision = decision
        self.stats = stats or TuneStats()
        self.pool = WorkspacePool()
        self.columns_hint = decision.columns

        variant = cbm.variant
        d_right = cbm.diag
        d_left = cbm.diag if variant is Variant.DAD else cbm.diag_left
        alpha = cbm.alpha or 0
        pattern = self._binary_pattern(source)

        self.blocks: list[_CsrBlock | _CbmBlock] = []
        for b in decision.blocks:
            block = pattern.extract_row_range(b.lo, b.hi)
            if b.fmt == "csr" or block.nnz == 0:
                # all-zero blocks route to CSR regardless of the decision:
                # there is no tree to build and the compiled kernel just
                # writes zeros into the span
                self.blocks.append(
                    _CsrBlock(b.lo, b.hi, source.extract_row_range(b.lo, b.hi), model)
                )
                continue
            if variant is Variant.A:
                block_cbm, _ = build_cbm(block, alpha=alpha)
            elif variant is Variant.AD:
                block_cbm, _ = build_cbm(block, alpha=alpha, variant="AD", diag=d_right)
            else:  # DAD row blocks and D1AD2 both build as rectangular D1AD2
                block_cbm, _ = build_cbm(
                    block,
                    alpha=alpha,
                    variant="D1AD2",
                    diag=d_right,
                    diag_left=np.asarray(d_left)[b.lo:b.hi],
                )
            plan = block_cbm.plan(update=update, scaling=scaling)
            self.blocks.append(_CbmBlock(b.lo, b.hi, plan, model))

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_cover(decision: TuneDecision, n: int) -> None:
        cursor = 0
        for b in decision.blocks:
            if b.lo != cursor or b.hi <= b.lo:
                raise ShapeError(
                    f"hybrid block map does not tile [0, {n}): block "
                    f"({b.lo}, {b.hi}) at cursor {cursor}"
                )
            cursor = b.hi
        if cursor != n:
            raise ShapeError(f"hybrid block map covers [0, {cursor}), matrix has {n} rows")

    @staticmethod
    def _binary_pattern(source: CSRMatrix) -> CSRMatrix:
        if source.is_binary():
            return source
        return CSRMatrix(
            source.indptr,
            source.indices,
            np.ones(source.nnz, dtype=np.float32),
            source.shape,
            check=False,
        )

    # ------------------------------------------------------------------
    @property
    def route(self) -> str:
        return self.decision.route

    def predicted_s(self, columns: int) -> float:
        return sum(b.var_s * columns + b.fixed_s for b in self.blocks)

    def block_map(self) -> list[list]:
        return [[b.lo, b.hi, b.fmt] for b in self.blocks]

    # ------------------------------------------------------------------
    def matmul(self, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Stitched product ``M @ b`` for a dense 2-D operand."""
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("hybrid matmul", self.shape, b.shape)
        if out is None:
            out = self.pool.acquire((self.shape[0], b.shape[1]), np.float32)
        elif out.shape != (self.shape[0], b.shape[1]):
            raise ShapeError.mismatch(
                "hybrid out", (self.shape[0], b.shape[1]), out.shape
            )
        t0 = time.perf_counter()
        for blk in self.blocks:
            blk.execute(b, out)
        measured = time.perf_counter() - t0
        self.stats.record(self.predicted_s(b.shape[1]), measured)
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = check_dense(v, name="v", ndim=1)
        if v.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("hybrid matvec", self.shape, v.shape)
        out = np.empty(self.shape[0], dtype=np.float32)
        t0 = time.perf_counter()
        for blk in self.blocks:
            blk.execute_vec(v, out)
        self.stats.record(self.predicted_s(1), time.perf_counter() - t0)
        return out

    def release(self, buf: np.ndarray) -> None:
        self.pool.release(buf)

    def prepare(self, width: int, dtype=np.float32) -> None:
        """Pre-warm the output pool for the expected serving width."""
        self.pool.warm((self.shape[0], int(width)), dtype)

    def drain(self) -> int:
        freed = self.pool.drain()
        for blk in self.blocks:
            if isinstance(blk, _CbmBlock):
                freed += blk.plan.pool.drain()
        return freed

    def describe(self) -> dict:
        return {
            "route": self.route,
            "rows": self.shape[0],
            "cols": self.shape[1],
            "columns_hint": self.columns_hint,
            "blocks": [blk.describe() for blk in self.blocks],
            "stats": self.stats.snapshot(),
        }


class HybridAdjacency:
    """:class:`~repro.gnn.adjacency.AdjacencyOp` view of a hybrid plan.

    Lets the two-layer GCN forward run its SpMMs through the routed
    operator without knowing about formats.
    """

    supports_out = True

    def __init__(self, hybrid: HybridPlan):
        if hybrid.shape[0] != hybrid.shape[1]:
            raise ShapeError("GCN adjacency must be square")
        self._hybrid = hybrid

    @property
    def n(self) -> int:
        return self._hybrid.shape[0]

    def prepare(self, *, width: int | None = None, dtype=np.float32) -> None:
        if width:
            self._hybrid.prepare(width, dtype)

    def matmul(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        if x.ndim == 1:
            return self._hybrid.matvec(x)
        return self._hybrid.matmul(x, out=out)
