"""repro — Compressed Binary Matrix (CBM) format for accelerating GNNs.

A full reproduction of *"Accelerating Graph Neural Networks Using a Novel
Computation-Friendly Matrix Compression Format"* (Alves et al., IPDPS
2025): the CBM compression format, its AX/ADX/DADX multiplication kernels,
the parallel update-stage machinery, a GNN stack (GCN/GIN/GraphSAGE), and
the full benchmark harness for every table and figure in the paper.

Quickstart::

    import numpy as np
    from repro import build_cbm, load_dataset

    a = load_dataset("ca-HepPh")              # binary adjacency, CSR
    cbm, report = build_cbm(a, alpha=4)       # compress
    x = np.random.rand(a.shape[1], 500).astype(np.float32)
    y = cbm @ x                                # CBM SpMM
    assert np.allclose(y, a @ x, rtol=1e-4)
    print(report.compression_ratio)
"""

from repro.core.bl2001 import build_bl2001
from repro.core.builder import BuildReport, build_cbm, build_clustered
from repro.core.cbm import CBMMatrix, Variant
from repro.core.io import load_cbm, save_cbm
from repro.core.tree import VIRTUAL, CompressionTree
from repro.core.verify import verify_cbm
from repro.graphs.datasets import list_datasets, load_dataset, paper_stats
from repro.graphs.laplacian import gcn_normalization, normalized_adjacency
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "BuildReport",
    "build_cbm",
    "build_clustered",
    "build_bl2001",
    "load_cbm",
    "save_cbm",
    "verify_cbm",
    "CBMMatrix",
    "Variant",
    "CompressionTree",
    "VIRTUAL",
    "list_datasets",
    "load_dataset",
    "paper_stats",
    "gcn_normalization",
    "normalized_adjacency",
    "CSRMatrix",
    "COOMatrix",
    "CSCMatrix",
    "__version__",
]
