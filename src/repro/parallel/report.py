"""Roofline diagnostics: explain *why* a kernel is fast or slow.

:func:`cost_breakdown` decomposes the machine model's prediction for one
dataset into its terms (compute, memory, update-stage makespan, cache
tier of each structure) for both the CSR baseline and the CBM kernel at
1 and 16 cores — the numbers behind the paper's Section VI-E.1 cache
narrative, printed instead of hand-waved.  Exposed on the CLI as
``python -m repro model <dataset>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cbm import CBMMatrix
from repro.parallel.cache import CacheModel, WorkingSet
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm
from repro.sparse.csr import CSRMatrix
from repro.utils.fmt import format_table, human_bytes


@dataclass(frozen=True)
class BreakdownRow:
    """One kernel × core-count line of the diagnostic table."""

    kernel: str
    cores: int
    compute_s: float
    memory_s: float
    update_s: float
    total_s: float
    sparse_bytes: int
    tier: str
    bound: str  # "compute" or "memory"


def cost_breakdown(
    a: CSRMatrix,
    cbm: CBMMatrix,
    p: int,
    *,
    machine: MachineSpec = XEON_GOLD_6130,
    scale_nnz: float = 1.0,
    scale_rows: float = 1.0,
    core_counts: tuple[int, ...] = (1, 16),
) -> list[BreakdownRow]:
    """Per-term cost decomposition for the CSR and CBM kernels."""
    cache = CacheModel(machine)
    rows = []
    for cores in core_counts:
        for kernel, cost, sparse_bytes in (
            (
                "CSR",
                predict_csr_spmm(
                    a, p, cores=cores, machine=machine,
                    scale_nnz=scale_nnz, scale_rows=scale_rows,
                ),
                int(a.memory_bytes() * scale_nnz),
            ),
            (
                "CBM",
                predict_cbm_spmm(
                    cbm, p, cores=cores, machine=machine,
                    scale_nnz=scale_nnz, scale_rows=scale_rows,
                ),
                int(cbm.memory_bytes() * scale_nnz),
            ),
        ):
            tier = cache.resident_tier(WorkingSet(sparse_bytes, 0), cores)
            rows.append(
                BreakdownRow(
                    kernel=kernel,
                    cores=cores,
                    compute_s=cost.compute_s,
                    memory_s=cost.memory_s,
                    update_s=cost.update_makespan_s,
                    total_s=cost.total_s,
                    sparse_bytes=sparse_bytes,
                    tier=tier,
                    bound="compute" if cost.compute_s >= cost.memory_s else "memory",
                )
            )
    return rows


def render_breakdown(rows: list[BreakdownRow], title: str) -> str:
    """Plain-text table of a :func:`cost_breakdown` result."""
    table = [
        [
            r.kernel,
            r.cores,
            f"{r.compute_s * 1e3:.3f}",
            f"{r.memory_s * 1e3:.3f}",
            f"{r.update_s * 1e3:.3f}",
            f"{r.total_s * 1e3:.3f}",
            human_bytes(r.sparse_bytes),
            r.tier,
            r.bound,
        ]
        for r in rows
    ]
    return format_table(
        [
            "Kernel",
            "Cores",
            "Compute[ms]",
            "Memory[ms]",
            "Update[ms]",
            "Total[ms]",
            "SparseBytes",
            "CacheTier",
            "Bound",
        ],
        table,
        title=title,
    )
