"""Roofline-style performance prediction for CSR and CBM SpMM kernels.

The container running this reproduction has one core, so 16-thread
wall-clock cannot be measured.  Instead, kernel times are *predicted* from
first principles on the modelled Xeon Gold 6130:

``time = max(compute_time, memory_time) + sync_overhead``

* compute time — scalar operations (:mod:`repro.core.opcount`) divided by
  sustained FLOP throughput of the cores in use;
* memory time — estimated traffic divided by the bandwidth of the cache
  tier the kernel's sparse structure resides in
  (:mod:`repro.parallel.cache`), which is how the paper's Section VI-E.1
  cache-capacity effect (baseline scaling super-linearly on mid-size
  graphs) enters the model;
* the CBM update stage additionally runs through the dynamic branch
  scheduler (:mod:`repro.parallel.schedule`), so limited branch
  parallelism at small alpha — and its improvement at large alpha — shows
  up exactly as in Figure 2 of the paper.

Absolute times are rough; the benchmarks only consume *ratios* (CBM vs
CSR at equal core count), which is also all the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cbm import CBMMatrix, Variant
from repro.core.opcount import cbm_spmm_ops, csr_spmm_ops
from repro.parallel.cache import CacheModel, WorkingSet
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec
from repro.parallel.schedule import update_stage_schedule
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive

# Fraction of B-row gather traffic that misses cache, per residence tier
# of the dense operand B (the gathered data): clustered column accesses
# mostly hit when B fits close to the cores.
_MISS_RATE = {"private": 0.03, "shared": 0.12, "dram": 0.45}

_VALUE_BYTES = 4  # single precision, as in the paper

# Effective DRAM traffic per update-stage scalar op: parent rows are hot
# (just produced and shared by siblings), so roughly one value per op —
# the read-modify-write of the child row element — reaches memory.
_UPDATE_BYTES_PER_OP = 4

# Per-row fixed cost of an SpMM kernel, expressed in equivalent stored
# elements: a row with r non-zeros runs at efficiency r / (r + overhead).
_ROW_OVERHEAD_NNZ = 8.0


@dataclass(frozen=True)
class KernelCost:
    """Predicted cost breakdown of one kernel invocation (seconds)."""

    compute_s: float
    memory_s: float
    sync_s: float
    update_makespan_s: float = 0.0

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.sync_s + self.update_makespan_s


def _spmm_cost(
    machine: MachineSpec,
    cache: CacheModel,
    sparse_bytes: int,
    nnz: int,
    n_rows: int,
    n_cols: int,
    p: int,
    flops: float,
    cores: int,
) -> KernelCost:
    """Shared roofline for one sparse-dense product.

    Traffic terms:

    * the sparse structure is free when it fits the caches of the cores in
      use (the kernels are timed over repeated runs, so a resident
      structure stays warm — the paper's Section VI-E.1 super-linear
      baseline scaling on mid-size graphs comes from exactly this term);
    * B is streamed once plus a gather-miss re-fetch term whose rate
      depends on where B itself can reside;
    * C is written once.
    """
    b_bytes = _VALUE_BYTES * p * n_cols
    c_bytes = _VALUE_BYTES * p * n_rows
    capacity = machine.private_cache_bytes(cores) + machine.shared_cache_bytes()
    sparse_traffic = 0.0 if sparse_bytes <= capacity else float(sparse_bytes)
    if b_bytes <= machine.private_cache_bytes(cores):
        tier = "private"
    elif b_bytes <= capacity:
        tier = "shared"
    else:
        tier = "dram"
    gather_bytes = _MISS_RATE[tier] * nnz * _VALUE_BYTES * p
    traffic = sparse_traffic + b_bytes + c_bytes + gather_bytes
    ws = WorkingSet(sparse_bytes=sparse_bytes, dense_bytes=b_bytes + c_bytes)
    bw = machine.effective_bandwidth(ws.total, cores)
    # Row-density efficiency: SpMM kernels pay a fixed per-row cost (loop
    # setup, remainder handling), so matrices with short rows sustain a
    # lower FLOP rate.  This is why the paper's measured CBM speedups lag
    # the compression ratio (Section VI-E.1): the delta matrix A′ is much
    # sparser *per row* than A.
    rows_per_nnz = nnz / max(n_rows, 1)
    efficiency = rows_per_nnz / (rows_per_nnz + _ROW_OVERHEAD_NNZ)
    compute = flops / (machine.peak_flops_per_core * cores * max(efficiency, 0.05))
    return KernelCost(
        compute_s=compute,
        memory_s=traffic / bw,
        sync_s=machine.sync_overhead_s if cores > 1 else 0.0,
    )


def predict_csr_spmm(
    a: CSRMatrix,
    p: int,
    *,
    cores: int = 1,
    machine: MachineSpec = XEON_GOLD_6130,
    scale_nnz: float = 1.0,
    scale_rows: float = 1.0,
) -> KernelCost:
    """Predicted cost of the baseline CSR SpMM (the paper's MKL kernel).

    ``scale_nnz``/``scale_rows`` extrapolate a scaled-down stand-in graph
    back to its paper-scale original (edge- and node-count ratios): all
    nnz-proportional quantities (flops, sparse bytes) and row-proportional
    quantities (dense streams) are multiplied up, so cache-capacity
    effects trigger at the same graph sizes as on the paper's testbed.
    """
    check_positive(p, "p")
    check_positive(cores, "cores")
    check_positive(scale_nnz, "scale_nnz")
    check_positive(scale_rows, "scale_rows")
    cache = CacheModel(machine)
    flops = csr_spmm_ops(a, p).total * scale_nnz
    return _spmm_cost(
        machine,
        cache,
        sparse_bytes=int(a.memory_bytes() * scale_nnz),
        nnz=int(a.nnz * scale_nnz),
        n_rows=int(a.shape[0] * scale_rows),
        n_cols=int(a.shape[1] * scale_rows),
        p=p,
        flops=flops,
        cores=cores,
    )


def predict_cbm_spmm(
    cbm: CBMMatrix,
    p: int,
    *,
    cores: int = 1,
    machine: MachineSpec = XEON_GOLD_6130,
    scale_nnz: float = 1.0,
    scale_rows: float = 1.0,
) -> KernelCost:
    """Predicted cost of the CBM SpMM: multiply stage + branch-parallel update.

    See :func:`predict_csr_spmm` for the paper-scale extrapolation knobs.
    """
    check_positive(p, "p")
    check_positive(cores, "cores")
    check_positive(scale_nnz, "scale_nnz")
    check_positive(scale_rows, "scale_rows")
    cache = CacheModel(machine)
    ops = cbm_spmm_ops(cbm.delta, cbm.tree, p, variant=cbm.variant.value)
    mul = _spmm_cost(
        machine,
        cache,
        sparse_bytes=int(cbm.memory_bytes() * scale_nnz),
        nnz=int(cbm.delta.nnz * scale_nnz),
        n_rows=int(cbm.shape[0] * scale_rows),
        n_cols=int(cbm.shape[1] * scale_rows),
        p=p,
        flops=ops.multiply_stage * scale_nnz,
        cores=cores,
    )
    # Update stage: branch-level dynamic schedule; each scalar op also moves
    # ~2 values (read parent row element, read+write own) — bandwidth-bound
    # in practice, so charge the makespan at the slower of flop/byte rates.
    dad = cbm.variant is Variant.DAD
    sched = update_stage_schedule(cbm.tree, p, cores, dad=dad)
    ws = WorkingSet(
        sparse_bytes=int(8 * cbm.tree.num_tree_edges * scale_rows),
        dense_bytes=int(2 * _VALUE_BYTES * p * cbm.shape[0] * scale_rows),
    )
    flop_rate = machine.peak_flops_per_core  # per core
    byte_rate = machine.effective_bandwidth(max(ws.total, 1), cores) / max(cores, 1)
    per_op_s = max(1.0 / flop_rate, _UPDATE_BYTES_PER_OP / byte_rate)
    update_makespan = sched.makespan * per_op_s * scale_rows
    sync = machine.sync_overhead_s if cores > 1 else 0.0
    return KernelCost(
        compute_s=mul.compute_s,
        memory_s=mul.memory_s,
        sync_s=mul.sync_s + sync,
        update_makespan_s=update_makespan,
    )
