"""Sharded CBM plans: row-block decomposition for multi-process execution.

ROADMAP item 2: the §V-B branch decomposition proves update-stage work
units are independent, but one Python process cannot exploit that beyond
the GIL.  A :class:`ShardedPlan` therefore splits the adjacency into
**degree-aware contiguous row blocks** (:func:`repro.sparse.blocked.partition_rows`
— the row-load-balancing idea GPU SpMM kernels apply by sorting rows by
nnz), builds one compression tree *per shard*, and lays each shard's
kernel operands out in ``multiprocessing.shared_memory`` so worker
processes attach rather than copy — Property 3 (no extra memory) holds
across the process boundary.

Row-block sharding is exact, not approximate: ``M @ B`` row-partitions
as ``[M[lo:hi] @ B for (lo, hi) in bounds]``, and each row block of a
binary (or diagonally scaled) matrix is itself CBM-compressible — the
builder accepts rectangular inputs, and a ``DAD`` matrix's row block is
the rectangular ``D1AD2`` form ``diag(d[lo:hi]) @ A[lo:hi] @ diag(d)``.
Every shard runs the same two-stage kernel as the in-process path: the
scaled-delta SpMM, then :func:`repro.runtime.plan.apply_level_schedule`
over the shard's own level pairs — literally the parent's update code,
imported by the worker.

The module keeps a strict parent/worker split:

* parent side — :class:`ShardedPlan` builds per-shard
  :class:`~repro.runtime.plan.KernelPlan` objects (these also serve the
  thread/degraded path), packs their operands into one
  :class:`~repro.parallel.shm.SegmentArena` per shard, and owns the
  staging segments for the dense operand/output plus the status board;
* worker side — the module-level :func:`run_shard` receives only a
  picklable :class:`ShardTask` of segment descriptors, attaches, computes
  into a private scratch block, publishes the block into the shared
  output slice, and **commits last**: the CRC then the epoch land in the
  status board only after the slice is fully written, so a worker killed
  at any earlier point leaves the previous epoch's commit visible and the
  supervisor treats the shard as simply not done (restore-or-invalidate:
  a half-written slice is never mistaken for a result).

The status board is a ``(num_shards, 4)`` float64 shared array; columns
:data:`HEARTBEAT` (``time.monotonic()`` — system-wide CLOCK_MONOTONIC on
Linux, comparable across processes), :data:`EPOCH` (last committed
execution epoch), :data:`CRC` (crc32 of the committed slice bytes) and
:data:`PROGRESS` (last sync point reached, for diagnostics).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.builder import build_cbm
from repro.errors import ShapeError, ShardError
from repro.parallel import shm
from repro.runtime.plan import KernelPlan, apply_level_schedule
from repro.sparse.blocked import partition_rows
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_dense, check_positive

# Status-board columns.
HEARTBEAT, EPOCH, CRC, PROGRESS = 0, 1, 2, 3
STATUS_COLS = 4

# Worker sync points, in execution order; PROGRESS stores the index.
SYNC_POINTS = ("start", "multiplied", "updated", "commit")


@dataclass(frozen=True)
class ShardSpec:
    """Picklable description of one shard's operands in shared memory.

    ``children``/``parents`` are the shard's level schedule flattened
    into two concatenated arrays; ``level_offsets`` (length levels+1)
    recovers the per-level spans.  Indices are local to the shard's row
    block ``[lo, hi)``.  ``row_scale`` is the deferred diagonal scale for
    DAD/D1AD2 shards (None otherwise).  A zero-``nnz`` block has no
    operand at all: its output slice is identically zero and the parent
    auto-commits it without dispatching a worker.
    """

    index: int
    lo: int
    hi: int
    columns: int
    op_indptr: shm.ArraySpec | None
    op_indices: shm.ArraySpec | None
    op_data: shm.ArraySpec | None
    children: shm.ArraySpec | None
    parents: shm.ArraySpec | None
    level_offsets: shm.ArraySpec | None
    row_scale: shm.ArraySpec | None
    op_nnz: int
    tree_edges: int

    @property
    def rows(self) -> int:
        return self.hi - self.lo

    @property
    def is_zero(self) -> bool:
        return self.op_indptr is None


@dataclass(frozen=True)
class ShardTask:
    """One worker invocation: which shard, against which staged buffers.

    ``attempt`` feeds the chaos injector (a retried shard must be able to
    draw a *different* fault than the attempt that killed it, or a
    deterministic injector would fail the same shard forever).
    """

    spec: ShardSpec
    b: shm.ArraySpec
    out: shm.ArraySpec
    status: shm.ArraySpec
    epoch: int
    attempt: int = 0
    chaos: object | None = None


def slice_crc(block: np.ndarray) -> int:
    """The commit checksum of one output slice (crc32 of its raw bytes)."""
    return zlib.crc32(np.ascontiguousarray(block).tobytes())


def run_shard(task: ShardTask) -> int:
    """Worker entry point: execute one shard against the staged operand.

    Module-level and argument-picklable, so it dispatches under both
    ``fork`` and ``spawn`` start methods.  Returns the shard index; the
    *authoritative* completion signal is the status-board commit, not the
    future's result — a future can be lost to a pool teardown after the
    commit already landed, and the supervisor must count that shard done.
    """
    spec = task.spec
    status = shm.attach_ndarray(task.status)
    row = status[spec.index]
    fault = None
    if task.chaos is not None:
        fault = task.chaos.decide(spec.index, task.epoch, task.attempt)

    def sync(point: str) -> None:
        row[PROGRESS] = float(SYNC_POINTS.index(point))
        row[HEARTBEAT] = time.monotonic()
        if fault is not None and fault.point == point:
            fault.fire()

    sync("start")
    out = shm.attach_ndarray(task.out)
    if spec.is_zero:
        out[spec.lo:spec.hi] = 0
        row[CRC] = float(slice_crc(out[spec.lo:spec.hi]))
        row[EPOCH] = float(task.epoch)
        return spec.index

    b = shm.attach_ndarray(task.b)
    import scipy.sparse as sp

    op = sp.csr_matrix(
        (
            shm.attach_ndarray(spec.op_data),
            shm.attach_ndarray(spec.op_indices),
            shm.attach_ndarray(spec.op_indptr),
        ),
        shape=(spec.rows, spec.columns),
        copy=False,
    )
    c = np.ascontiguousarray(op @ b, dtype=out.dtype)
    sync("multiplied")

    offsets = shm.attach_ndarray(spec.level_offsets)
    children = shm.attach_ndarray(spec.children)
    parents = shm.attach_ndarray(spec.parents)
    pairs = [
        (children[offsets[i]:offsets[i + 1]], parents[offsets[i]:offsets[i + 1]])
        for i in range(len(offsets) - 1)
    ]
    row_scale = None if spec.row_scale is None else shm.attach_ndarray(spec.row_scale)
    apply_level_schedule(c, pairs, row_scale=row_scale)
    sync("updated")

    view = out[spec.lo:spec.hi]
    if fault is not None and fault.action == "torn":
        view[: spec.rows // 2] = c[: spec.rows // 2]  # deliberately half-written
    else:
        view[...] = c
    sync("commit")
    # Commit protocol: checksum of the *intended* block, then the epoch,
    # strictly after the slice write.  (A torn-write fault above lies —
    # that is exactly what checksum verification exists to catch.)
    row[CRC] = float(slice_crc(c))
    row[EPOCH] = float(task.epoch)
    return spec.index


@dataclass
class _Shard:
    """Parent-side state for one shard."""

    index: int
    lo: int
    hi: int
    plan: KernelPlan | None  # None for empty/zero blocks
    spec: ShardSpec
    arena: shm.SegmentArena | None


class ShardedPlan:
    """A CBM kernel plan split into degree-aware row-block shards.

    Parameters
    ----------
    a:
        Binary CSR adjacency (square or rectangular).
    num_shards:
        How many row blocks; empty blocks are valid (``n < num_shards``).
    variant / diag / diag_left:
        As :func:`repro.core.builder.build_cbm` — ``"DAD"`` shards are
        built as rectangular ``D1AD2`` blocks (``diag_left=d[lo:hi]``).
    alpha:
        Compression-tree pruning threshold, forwarded per shard.

    The per-shard :class:`~repro.runtime.plan.KernelPlan` objects are the
    degraded in-process path *and* the source of the shared operands —
    both paths execute the same schedule, so degrading never changes the
    answer, only the process topology.
    """

    def __init__(
        self,
        a: CSRMatrix,
        *,
        num_shards: int,
        variant: str = "A",
        diag: np.ndarray | None = None,
        diag_left: np.ndarray | None = None,
        alpha: int = 0,
    ):
        check_positive(num_shards, "num_shards")
        if variant not in ("A", "AD", "DAD", "D1AD2"):
            raise ValueError(f"unknown variant {variant!r}")
        if variant != "A" and diag is None:
            raise ShapeError(f"variant {variant} requires a diagonal vector")
        if variant == "DAD" and a.shape[0] != a.shape[1]:
            raise ShapeError("variant DAD requires a square adjacency")
        if variant == "D1AD2" and diag_left is None:
            raise ShapeError("variant D1AD2 requires diag_left")
        self.shape = a.shape
        self.variant = variant
        self.num_shards = num_shards
        self.bounds = partition_rows(a.row_nnz(), num_shards)
        d_right = None if diag is None else np.asarray(diag, dtype=np.float64).ravel()
        d_left = d_right if variant == "DAD" else diag_left
        if d_left is not None:
            d_left = np.asarray(d_left, dtype=np.float64).ravel()
            if len(d_left) != a.shape[0]:
                raise ShapeError.mismatch("diag_left", (len(d_left),), a.shape)

        self.shards: list[_Shard] = []
        self.operand_dtype = np.dtype(np.float32)
        for i, (lo, hi) in enumerate(self.bounds):
            block = a.extract_rows(np.arange(lo, hi)) if hi > lo else None
            if block is None or block.nnz == 0:
                spec = ShardSpec(
                    i, lo, hi, a.shape[1],
                    None, None, None, None, None, None, None, 0, 0,
                )
                self.shards.append(_Shard(i, lo, hi, None, spec, None))
                continue
            if variant == "A":
                cbm, _ = build_cbm(block, alpha=alpha)
            elif variant == "AD":
                cbm, _ = build_cbm(block, alpha=alpha, variant="AD", diag=d_right)
            else:  # DAD row block and D1AD2 both shard as D1AD2
                cbm, _ = build_cbm(
                    block,
                    alpha=alpha,
                    variant="D1AD2",
                    diag=d_right,
                    diag_left=d_left[lo:hi],
                )
            plan = cbm.plan(update="level", scaling="deferred")
            self.operand_dtype = np.promote_types(self.operand_dtype, plan.operand.data.dtype)
            spec, arena = self._pack(i, lo, hi, plan)
            self.shards.append(_Shard(i, lo, hi, plan, spec, arena))

        self._status_spec, self.status, _ = shm.shared_ndarray(
            (num_shards, STATUS_COLS), np.float64
        )
        self.status[...] = 0.0
        self._staging_key: tuple | None = None
        self._b_spec: shm.ArraySpec | None = None
        self._b_view: np.ndarray | None = None
        self._out_spec: shm.ArraySpec | None = None
        self._out_view: np.ndarray | None = None
        self._released = False

    # ------------------------------------------------------------------
    def _pack(self, i: int, lo: int, hi: int, plan: KernelPlan):
        op = plan.operand
        children = (
            np.concatenate([lv for lv, _ in plan.level_pairs])
            if plan.level_pairs
            else np.empty(0, dtype=np.int64)
        )
        parents = (
            np.concatenate([ps for _, ps in plan.level_pairs])
            if plan.level_pairs
            else np.empty(0, dtype=np.int64)
        )
        offsets = np.zeros(len(plan.level_pairs) + 1, dtype=np.int64)
        np.cumsum([len(lv) for lv, _ in plan.level_pairs], out=offsets[1:])
        arrays = [op.indptr, op.indices, op.data, children, parents, offsets]
        if plan.row_scale is not None:
            arrays.append(plan.row_scale)
        arena = shm.SegmentArena(shm.SegmentArena.plan_bytes(arrays))
        packed = [arena.pack(arr) for arr in arrays]
        spec = ShardSpec(
            index=i,
            lo=lo,
            hi=hi,
            columns=self.shape[1],
            op_indptr=packed[0],
            op_indices=packed[1],
            op_data=packed[2],
            children=packed[3],
            parents=packed[4],
            level_offsets=packed[5],
            row_scale=packed[6] if plan.row_scale is not None else None,
            op_nnz=op.nnz,
            tree_edges=int(sum(len(lv) for lv, _ in plan.level_pairs)),
        )
        return spec, arena

    # ------------------------------------------------------------------
    def shard_costs(self) -> list[dict]:
        """Per-shard work summary (rows, operand nnz, tree edges).

        The schedule property tests assert these stay within the
        partitioner's documented balance bound; the hazard audit and the
        scaling bench read them too.
        """
        return [
            {
                "shard": s.index,
                "lo": s.lo,
                "hi": s.hi,
                "rows": s.hi - s.lo,
                "op_nnz": s.spec.op_nnz,
                "tree_edges": s.spec.tree_edges,
                "ops": s.spec.op_nnz + s.spec.tree_edges,
            }
            for s in self.shards
        ]

    def segment_layout(self) -> list[dict]:
        """Every (segment, offset, nbytes) span this plan has packed.

        Consumed by :func:`repro.staticcheck.hazards.analyze_shard_plan`
        to prove no two operands alias and no operand overlaps the
        staging/status segments.
        """
        spans = []
        for s in self.shards:
            spec = s.spec
            for field in (
                "op_indptr", "op_indices", "op_data",
                "children", "parents", "level_offsets", "row_scale",
            ):
                aspec = getattr(spec, field)
                if aspec is not None:
                    spans.append(
                        {
                            "shard": s.index,
                            "array": field,
                            "segment": aspec.segment,
                            "offset": aspec.offset,
                            "nbytes": aspec.nbytes,
                        }
                    )
        for name, aspec in (
            ("status", self._status_spec),
            ("b", self._b_spec),
            ("out", self._out_spec),
        ):
            if aspec is not None:
                spans.append(
                    {
                        "shard": -1,
                        "array": name,
                        "segment": aspec.segment,
                        "offset": aspec.offset,
                        "nbytes": aspec.nbytes,
                    }
                )
        return spans

    # ------------------------------------------------------------------
    def stage(self, b: np.ndarray) -> tuple[shm.ArraySpec, shm.ArraySpec, np.ndarray]:
        """Copy the dense operand into shared staging; returns
        ``(b_spec, out_spec, out_view)``.

        The staging pair (one ``m × p`` operand segment, one ``n × p``
        output segment) is reused across executions of the same width and
        rebuilt — old segments released — when the width or dtype
        changes, so steady-state serving allocates nothing.
        """
        if self._released:
            raise ShardError("sharded plan already released")
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("sharded matmul", self.shape, b.shape)
        out_dtype = np.promote_types(self.operand_dtype, b.dtype)
        key = (b.shape[1], np.dtype(b.dtype).str, out_dtype.str)
        if key != self._staging_key:
            for spec in (self._b_spec, self._out_spec):
                if spec is not None:
                    shm.release_segment(spec.segment)
            self._b_spec, self._b_view, _ = shm.shared_ndarray(b.shape, b.dtype)
            self._out_spec, self._out_view, _ = shm.shared_ndarray(
                (self.shape[0], b.shape[1]), out_dtype
            )
            self._staging_key = key
        self._b_view[...] = b
        return self._b_spec, self._out_spec, self._out_view

    @property
    def status_spec(self) -> shm.ArraySpec:
        return self._status_spec

    # ------------------------------------------------------------------
    def execute_shard_threaded(self, index: int, b: np.ndarray, out: np.ndarray) -> None:
        """Run one shard in-process, writing its slice of ``out``.

        The degraded path for a quarantined shard (and the building block
        of the whole-plan thread fallback): the shard's own
        :class:`KernelPlan` executes into ``out[lo:hi]``, replaying the
        identical multiply + level schedule the worker would have run.
        """
        s = self.shards[index]
        view = out[s.lo:s.hi]
        if s.plan is None:
            view[...] = 0
            return
        s.plan.execute(b, out=view)

    def execute_threaded(self, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Whole-plan in-process execution (the DEGRADED tier)."""
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("sharded matmul", self.shape, b.shape)
        if out is None:
            out = np.empty(
                (self.shape[0], b.shape[1]),
                dtype=np.promote_types(self.operand_dtype, b.dtype),
            )
        for s in self.shards:
            self.execute_shard_threaded(s.index, b, out)
        return out

    # ------------------------------------------------------------------
    def committed_epoch(self, index: int) -> int:
        return int(self.status[index, EPOCH])

    def verify_shard(self, index: int, epoch: int, out: np.ndarray, *, checksum: bool) -> bool:
        """Did shard ``index`` commit ``epoch`` — and, with ``checksum``,
        does the shared output slice actually match its committed CRC?"""
        if int(self.status[index, EPOCH]) != epoch:
            return False
        if not checksum:
            return True
        s = self.shards[index]
        return int(self.status[index, CRC]) == slice_crc(out[s.lo:s.hi])

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Unlink every shared segment owned by this plan (idempotent)."""
        if self._released:
            return
        self._released = True
        for s in self.shards:
            if s.arena is not None:
                s.arena.release()
            if s.plan is not None:
                s.plan.pool.drain()
        for spec in (self._b_spec, self._out_spec, self._status_spec):
            if spec is not None:
                shm.release_segment(spec.segment)
        self._b_spec = self._out_spec = None
        self._b_view = self._out_view = None

    def __enter__(self) -> "ShardedPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def describe(self) -> dict:
        costs = self.shard_costs()
        return {
            "shape": list(self.shape),
            "variant": self.variant,
            "num_shards": self.num_shards,
            "bounds": [list(b) for b in self.bounds],
            "empty_shards": sum(1 for s in self.shards if s.plan is None),
            "total_ops": int(sum(c["ops"] for c in costs)),
            "max_shard_ops": int(max((c["ops"] for c in costs), default=0)),
            "segments": len({sp["segment"] for sp in self.segment_layout()}),
        }
