"""Execution traces of the simulated dynamic schedule.

:func:`traced_schedule` replays the same greedy list-scheduling policy as
:func:`repro.parallel.schedule.simulate_dynamic_schedule` but records the
per-thread timeline — which branch ran where, when — so load imbalance
can be *seen*.  :func:`render_gantt` draws the timeline as an ASCII Gantt
chart (one row per thread), used by the scheduling ablation and handy
when tuning alpha or :func:`repro.core.rebalance.split_branches` caps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TaskEvent:
    """One task execution on one thread."""

    task: int
    thread: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ScheduleTrace:
    """Full timeline of a simulated schedule."""

    events: list[TaskEvent]
    threads: int
    makespan: float

    def thread_busy(self) -> np.ndarray:
        """Total busy time per thread."""
        busy = np.zeros(self.threads, dtype=np.float64)
        for e in self.events:
            busy[e.thread] += e.duration
        return busy

    @property
    def utilisation(self) -> float:
        if self.makespan == 0:
            return 1.0
        return float(self.thread_busy().sum() / (self.threads * self.makespan))


def traced_schedule(costs, threads: int) -> ScheduleTrace:
    """Greedy dynamic schedule with a recorded timeline.

    Matches ``simulate_dynamic_schedule`` exactly (same task order, same
    idle-thread-first policy), so its makespan equals the untraced one —
    a property the test suite pins.
    """
    check_positive(threads, "threads")
    costs = np.asarray(costs, dtype=np.float64).ravel()
    if np.any(costs < 0):
        raise ParallelError("task costs must be non-negative")
    events: list[TaskEvent] = []
    if len(costs) == 0:
        return ScheduleTrace(events=[], threads=threads, makespan=0.0)
    heap = [(0.0, t) for t in range(min(threads, len(costs)))]
    heapq.heapify(heap)
    for task, c in enumerate(costs):
        free_at, thread = heapq.heappop(heap)
        events.append(TaskEvent(task=task, thread=thread, start=free_at, end=free_at + float(c)))
        heapq.heappush(heap, (free_at + float(c), thread))
    makespan = max(t for t, _ in heap)
    return ScheduleTrace(events=events, threads=threads, makespan=makespan)


def render_gantt(trace: ScheduleTrace, *, width: int = 72) -> str:
    """ASCII Gantt chart: one row per thread, task ids in their slots."""
    check_positive(width, "width")
    if trace.makespan == 0:
        return "(empty schedule)"
    scale = width / trace.makespan
    lines = []
    per_thread: dict[int, list[TaskEvent]] = {}
    for e in trace.events:
        per_thread.setdefault(e.thread, []).append(e)
    for t in range(trace.threads):
        row = [" "] * width
        for e in per_thread.get(t, []):
            lo = int(e.start * scale)
            hi = max(int(e.end * scale), lo + 1)
            label = str(e.task)
            for k in range(lo, min(hi, width)):
                off = k - lo
                row[k] = label[off] if off < len(label) else "="
        lines.append(f"T{t:02d} |{''.join(row)}|")
    busy = trace.thread_busy()
    lines.append(
        f"makespan={trace.makespan:.1f}  utilisation={trace.utilisation:.2f}  "
        f"busiest/idlest={busy.max():.1f}/{busy.min():.1f}"
    )
    return "\n".join(lines)
