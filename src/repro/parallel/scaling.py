"""Strong-scaling curves from the machine model.

The paper reports only the 1- and 16-core endpoints; the model can fill
in the whole curve, showing *where* each kernel stops scaling (the cache
tier transitions and the update stage's branch limit).  Used by the
``bench_scaling`` benchmark and available for capacity planning ("how
many cores does this graph deserve?").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cbm import CBMMatrix
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class ScalingPoint:
    """One core count on a strong-scaling curve."""

    cores: int
    csr_s: float
    cbm_s: float

    @property
    def speedup(self) -> float:
        """CBM-vs-CSR speedup at this core count."""
        return self.csr_s / self.cbm_s


def strong_scaling_curve(
    a: CSRMatrix,
    cbm: CBMMatrix,
    p: int,
    *,
    machine: MachineSpec = XEON_GOLD_6130,
    core_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    scale_nnz: float = 1.0,
    scale_rows: float = 1.0,
) -> list[ScalingPoint]:
    """Predicted kernel times across core counts for both formats."""
    points = []
    for cores in core_counts:
        csr = predict_csr_spmm(
            a, p, cores=cores, machine=machine, scale_nnz=scale_nnz, scale_rows=scale_rows
        ).total_s
        cbm_t = predict_cbm_spmm(
            cbm, p, cores=cores, machine=machine, scale_nnz=scale_nnz, scale_rows=scale_rows
        ).total_s
        points.append(ScalingPoint(cores=cores, csr_s=csr, cbm_s=cbm_t))
    return points


def parallel_efficiency(points: list[ScalingPoint]) -> dict[str, list[float]]:
    """Per-format parallel efficiency: T(1) / (cores · T(cores)).

    1.0 is perfect scaling; the paper's mid-size graphs show the CSR
    baseline *exceeding* 1.0 (super-linear) when its matrix becomes
    cache-resident across cores — visible here as efficiency > 1.
    """
    if not points or points[0].cores != 1:
        raise ValueError("curve must start at 1 core for efficiency")
    base = points[0]
    return {
        "csr": [base.csr_s / (pt.cores * pt.csr_s) for pt in points],
        "cbm": [base.cbm_s / (pt.cores * pt.cbm_s) for pt in points],
    }


def saturation_cores(points: list[ScalingPoint], *, threshold: float = 0.05) -> dict[str, int]:
    """Smallest core count beyond which each format improves < threshold.

    A deployment answer: cores past this point are wasted on this kernel.
    """
    out = {}
    for key in ("csr", "cbm"):
        times = [getattr(pt, f"{key}_s") for pt in points]
        chosen = points[-1].cores
        for i in range(1, len(points)):
            gain = (times[i - 1] - times[i]) / times[i - 1]
            if gain < threshold:
                chosen = points[i - 1].cores
                break
        out[key] = chosen
    return out
