"""Real thread-pool execution of the CBM update stage (Section V-B).

The multiplication stage (sparse-dense product) is delegated to the
compiled backend, as in the paper (MKL parallelises it internally).  The
update stage is parallelised here the way the paper does it: each worker
replays complete branches of the compression tree — lists of edges in
topological order — taken from a shared queue (dynamic scheduling).
Branches are data-independent, so no synchronisation is needed beyond the
queue.

NumPy releases the GIL inside the vectorised row operations, so on a
multi-core host the workers genuinely overlap; on this reproduction's
single-core container the executor is still exercised for correctness
while the :mod:`repro.parallel.simulate` model predicts the 16-core
behaviour.

Failure semantics (the *guarded execution* contract)
----------------------------------------------------
The update stage mutates the output buffer ``c`` **in place**, so a
worker failure mid-run would otherwise leave ``c`` half-updated — a
silently wrong result.  :meth:`ThreadedUpdateExecutor.run_update`
therefore guarantees *restore-or-invalidate* semantics:

* the first worker exception (or watchdog trip) sets a shared cancel
  event; healthy workers stop taking branches at their next queue poll
  (prompt cancellation — they do not keep writing into ``c``);
* before the error propagates, ``c`` is either **restored** to its
  pre-call contents (``on_failure="restore"``, costs one buffer copy up
  front) or **invalidated** by NaN-poisoning every element
  (``on_failure="invalidate"``, the default — a poisoned buffer can
  never be mistaken for a valid product);
* the call then raises :class:`~repro.errors.ParallelError` (worker
  exception) or :class:`~repro.errors.WatchdogTimeout` (a branch
  exceeded ``branch_timeout`` seconds).

A stalled worker thread cannot be killed from Python; after a watchdog
trip it is abandoned as a daemon thread, which is why callers needing a
correct result afterwards (see ``repro.reliability.GuardedKernel``) must
recompute into a **fresh** buffer rather than reuse the invalidated one.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.cbm import CBMMatrix, Variant
from repro.core.tree import CompressionTree
from repro.errors import ParallelError, WatchdogTimeout
from repro.sparse.ops import Engine
from repro.utils.validation import check_dense, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.plan import KernelPlan

_WATCHDOG_POLL_S = 0.02


def _invalidate(c: np.ndarray) -> None:
    """NaN-poison ``c`` in place so a half-updated buffer reads as garbage."""
    if np.issubdtype(c.dtype, np.floating) or np.issubdtype(c.dtype, np.complexfloating):
        c.fill(np.nan)
    else:  # integer buffers cannot hold NaN; zeroing still destroys partial sums
        c.fill(0)


class ThreadedUpdateExecutor:
    """Replays the update stage over tree branches with a worker pool.

    Parameters
    ----------
    threads:
        Worker count (the paper uses 16, one per physical core).  The
        effective pool is capped at ``min(threads, len(branches))`` — the
        queue receives exactly one poison pill per *started* worker, so a
        pool wider than the branch list neither leaks pills nor spawns
        idle threads.
    branch_timeout:
        Optional watchdog limit in seconds for a single branch replay.
        When a worker holds one branch longer than this, the run is
        cancelled and :class:`~repro.errors.WatchdogTimeout` is raised
        (the stalled thread itself is abandoned as a daemon).
    on_failure:
        ``"invalidate"`` (default) NaN-poisons the output buffer before
        raising; ``"restore"`` snapshots the buffer up front and copies
        it back on failure.  Either way a failed :meth:`run_update`
        never returns — and never leaves — a half-updated ``c``.
    """

    def __init__(
        self,
        threads: int,
        *,
        branch_timeout: float | None = None,
        on_failure: str = "invalidate",
    ):
        check_positive(threads, "threads")
        if branch_timeout is not None:
            check_positive(branch_timeout, "branch_timeout")
        if on_failure not in ("invalidate", "restore"):
            raise ValueError(f"unknown on_failure mode {on_failure!r}")
        self.threads = threads
        self.branch_timeout = branch_timeout
        self.on_failure = on_failure

    # ------------------------------------------------------------------
    def run_update(
        self,
        tree: CompressionTree,
        c: np.ndarray,
        diag: np.ndarray | None = None,
        *,
        branches: list[np.ndarray] | None = None,
        deadline: float | None = None,
    ) -> None:
        """Apply the update stage to ``c`` in place, branch-parallel.

        ``diag`` enables the DAD row scaling (deferred mode: scaling is
        fused into the branch replay's final pass per row batch).
        ``branches`` lets callers reuse a precomputed branch decomposition
        (e.g. from a :class:`~repro.runtime.plan.KernelPlan`) instead of
        re-deriving it from the tree per call.  ``deadline`` is an
        absolute :func:`time.monotonic` instant: once it passes, the whole
        run is cancelled the same way a branch stall is — ``branch_timeout``
        bounds one branch, ``deadline`` bounds the request (the serving
        layer propagates each request's remaining budget here).

        On any worker failure or watchdog trip, ``c`` is restored or
        invalidated per ``on_failure`` (see the module docstring) and a
        :class:`~repro.errors.ParallelError` /
        :class:`~repro.errors.WatchdogTimeout` is raised — the buffer is
        never left half-updated.

        One executor instance may run several ``run_update`` calls
        concurrently (the serving layer shares one per adjacency): all
        per-run state — queue, cancel event, worker slots — is local to
        the call.
        """
        if branches is None:
            branches = tree.branches()
        if not branches:
            return
        snapshot = c.copy() if self.on_failure == "restore" else None
        work: "queue.SimpleQueue[np.ndarray | None]" = queue.SimpleQueue()
        for b in branches:
            work.put(b)
        errors: list[BaseException] = []
        # One poison pill per started worker: the pool is capped by the
        # branch count, so threads > len(branches) neither over-fills the
        # queue nor spawns workers that would block on an empty queue.
        n_workers = min(self.threads, len(branches))
        for _ in range(n_workers):
            work.put(None)

        parent = tree.parent
        cancel = threading.Event()
        # busy_since[i] is the monotonic time worker i started its current
        # branch, or None while idle; the watchdog reads it without a lock
        # (a torn read at worst delays the trip by one poll interval).
        busy_since: list[float | None] = [None] * n_workers

        def worker(slot: int) -> None:
            try:
                while True:
                    item = work.get()
                    if item is None or cancel.is_set():
                        return
                    busy_since[slot] = time.monotonic()
                    try:
                        self._replay_branch(item, parent, c, cancel)
                    finally:
                        busy_since[slot] = None
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors.append(exc)
                cancel.set()  # prompt cancellation: stop the other workers

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_workers)
        ]
        for t in threads:
            t.start()
        tripped = self._join_with_watchdog(threads, busy_since, cancel, deadline)
        if tripped or errors:
            if snapshot is not None:
                c[...] = snapshot
            else:
                _invalidate(c)
            disposition = "restored" if snapshot is not None else "invalidated"
            if tripped == "deadline":
                raise WatchdogTimeout(
                    "update stage cancelled: the request deadline passed "
                    f"mid-run; output buffer {disposition}"
                )
            if tripped == "stall":
                raise WatchdogTimeout(
                    f"update-stage worker exceeded branch_timeout="
                    f"{self.branch_timeout}s; output buffer {disposition}"
                )
            raise ParallelError(
                f"update-stage worker failed: {errors[0]!r}; output buffer "
                f"{disposition}"
            ) from errors[0]
        if diag is not None:
            c *= np.asarray(diag)[:, None]

    def _join_with_watchdog(
        self,
        threads: list[threading.Thread],
        busy_since: list[float | None],
        cancel: threading.Event,
        deadline: float | None = None,
    ) -> str | None:
        """Join workers; return ``"stall"`` / ``"deadline"`` on a trip."""
        if self.branch_timeout is None and deadline is None:
            for t in threads:
                t.join()
            return None

        def cancel_and_drain() -> None:
            cancel.set()
            # Give healthy workers (all of whom poll the queue between
            # branches) a moment to drain and exit; a genuinely stalled
            # daemon thread is abandoned.
            drain_by = time.monotonic() + 10 * _WATCHDOG_POLL_S
            for t in threads:
                t.join(max(0.0, drain_by - time.monotonic()))

        while True:
            alive = [t for t in threads if t.is_alive()]
            if not alive:
                return None
            now = time.monotonic()
            if deadline is not None and now > deadline:
                cancel_and_drain()
                return "deadline"
            if self.branch_timeout is not None:
                for since in busy_since:
                    if since is not None and now - since > self.branch_timeout:
                        cancel_and_drain()
                        return "stall"
            alive[0].join(_WATCHDOG_POLL_S)

    def _replay_branch(
        self,
        branch: np.ndarray,
        parent: np.ndarray,
        c: np.ndarray,
        cancel: threading.Event | None = None,
    ) -> None:
        """Topological replay of one branch, in place on ``c``:
        ``c[x] += c[parent[x]]`` per edge.

        The branch array is already in topological order (tree.branches()
        guarantees it); the first entry is the branch root (no update).
        Each iteration is one row axpy — exactly the paper's inner loop —
        and NumPy releases the GIL inside it, so branches overlap across
        workers on multi-core hosts.  ``cancel`` is this run's cancel
        event (fault-injection subclasses poll it while stalling); it is
        passed per call because one executor may serve concurrent runs.
        """
        for x in branch[1:]:
            c[x] += c[parent[x]]

    # ------------------------------------------------------------------


def parallel_matmul(
    cbm: CBMMatrix,
    b: np.ndarray,
    *,
    threads: int,
    engine: Engine | None = None,
    plan: "KernelPlan | None" = None,
    branch_timeout: float | None = None,
    deadline: float | None = None,
    on_failure: str = "invalidate",
    executor_factory=None,
) -> np.ndarray:
    """Full CBM SpMM with the branch-parallel update stage.

    Multiplication stage runs on the compiled backend (internally
    parallel, as MKL is in the paper); the update stage runs on a
    :class:`ThreadedUpdateExecutor`.  The branch decomposition and the
    scaled operand come from the matrix's cached
    :class:`~repro.runtime.plan.KernelPlan` (pass ``plan`` to share an
    explicit one), so repeated calls pay no per-call schedule cost.

    ``branch_timeout`` / ``deadline`` / ``on_failure`` are forwarded to
    the executor's watchdog (see :class:`ThreadedUpdateExecutor`);
    ``executor_factory`` substitutes the executor class itself (the chaos
    harness injects failing/stalling executors through it).
    """
    b = check_dense(b, name="b", ndim=2)
    if plan is None:
        plan = cbm.plan()
    c = plan.multiply(b, engine=engine)
    factory = executor_factory if executor_factory is not None else ThreadedUpdateExecutor
    executor = factory(threads, branch_timeout=branch_timeout, on_failure=on_failure)
    diag = cbm.diag if cbm.variant is Variant.DAD else None
    executor.run_update(cbm.tree, c, diag, branches=plan.branches, deadline=deadline)
    return c
