"""Real thread-pool execution of the CBM update stage (Section V-B).

The multiplication stage (sparse-dense product) is delegated to the
compiled backend, as in the paper (MKL parallelises it internally).  The
update stage is parallelised here the way the paper does it: each worker
replays complete branches of the compression tree — lists of edges in
topological order — taken from a shared queue (dynamic scheduling).
Branches are data-independent, so no synchronisation is needed beyond the
queue.

NumPy releases the GIL inside the vectorised row operations, so on a
multi-core host the workers genuinely overlap; on this reproduction's
single-core container the executor is still exercised for correctness
while the :mod:`repro.parallel.simulate` model predicts the 16-core
behaviour.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.core.cbm import CBMMatrix, Variant
from repro.core.tree import CompressionTree
from repro.errors import ParallelError
from repro.sparse.ops import Engine
from repro.utils.validation import check_dense, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.plan import KernelPlan


class ThreadedUpdateExecutor:
    """Replays the update stage over tree branches with a worker pool.

    Parameters
    ----------
    threads:
        Worker count (the paper uses 16, one per physical core).
    """

    def __init__(self, threads: int):
        check_positive(threads, "threads")
        self.threads = threads

    # ------------------------------------------------------------------
    def run_update(
        self,
        tree: CompressionTree,
        c: np.ndarray,
        diag: np.ndarray | None = None,
        *,
        branches: list[np.ndarray] | None = None,
    ) -> None:
        """Apply the update stage to ``c`` in place, branch-parallel.

        ``diag`` enables the DAD row scaling (deferred mode: scaling is
        fused into the branch replay's final pass per row batch).
        ``branches`` lets callers reuse a precomputed branch decomposition
        (e.g. from a :class:`~repro.runtime.plan.KernelPlan`) instead of
        re-deriving it from the tree per call.
        """
        if branches is None:
            branches = tree.branches()
        if not branches:
            return
        work: "queue.SimpleQueue[np.ndarray | None]" = queue.SimpleQueue()
        for b in branches:
            work.put(b)
        errors: list[BaseException] = []
        n_workers = min(self.threads, len(branches))
        for _ in range(n_workers):
            work.put(None)  # one poison pill per worker

        parent = tree.parent

        def worker() -> None:
            try:
                while True:
                    item = work.get()
                    if item is None:
                        return
                    self._replay_branch(item, parent, c)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors.append(exc)

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(n_workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise ParallelError(f"update-stage worker failed: {errors[0]!r}") from errors[0]
        if diag is not None:
            c *= np.asarray(diag)[:, None]

    def _replay_branch(self, branch: np.ndarray, parent: np.ndarray, c: np.ndarray) -> None:
        """Topological replay of one branch: c[x] += c[parent[x]] per edge.

        The branch array is already in topological order (tree.branches()
        guarantees it); the first entry is the branch root (no update).
        Each iteration is one row axpy — exactly the paper's inner loop —
        and NumPy releases the GIL inside it, so branches overlap across
        workers on multi-core hosts.
        """
        for x in branch[1:]:
            c[x] += c[parent[x]]

    # ------------------------------------------------------------------


def parallel_matmul(
    cbm: CBMMatrix,
    b: np.ndarray,
    *,
    threads: int,
    engine: Engine | None = None,
    plan: "KernelPlan | None" = None,
) -> np.ndarray:
    """Full CBM SpMM with the branch-parallel update stage.

    Multiplication stage runs on the compiled backend (internally
    parallel, as MKL is in the paper); the update stage runs on a
    :class:`ThreadedUpdateExecutor`.  The branch decomposition and the
    scaled operand come from the matrix's cached
    :class:`~repro.runtime.plan.KernelPlan` (pass ``plan`` to share an
    explicit one), so repeated calls pay no per-call schedule cost.
    """
    b = check_dense(b, name="b", ndim=2)
    if plan is None:
        plan = cbm.plan()
    c = plan.multiply(b, engine=engine)
    executor = ThreadedUpdateExecutor(threads)
    diag = cbm.diag if cbm.variant is Variant.DAD else None
    executor.run_update(cbm.tree, c, diag, branches=plan.branches)
    return c
