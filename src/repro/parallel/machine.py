"""Shared-memory machine specification for the performance model.

:data:`XEON_GOLD_6130` models the paper's testbed (Section VI-A): 16
physical Skylake cores at a fixed 2.1 GHz, 32 KiB private L1d, 1 MiB
private L2, 22 MiB shared L3.  Throughput numbers are deliberately coarse
— the simulator predicts *ratios* (CBM vs CSR, 1 vs 16 cores), which are
insensitive to the absolute constants as long as compute and memory terms
are balanced like real SpMM kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    name: str
    size_bytes: int
    shared: bool  # shared across all cores (True) or private per core
    bandwidth_bytes_per_s: float  # sustained per-core stream bandwidth

    def __post_init__(self) -> None:
        check_positive(self.size_bytes, f"{self.name} size_bytes")
        check_positive(self.bandwidth_bytes_per_s, f"{self.name} bandwidth")


@dataclass(frozen=True)
class MachineSpec:
    """Core counts, clock, cache hierarchy, and memory bandwidth."""

    name: str
    cores: int
    clock_hz: float
    flops_per_cycle: float  # sustained scalar-equivalent FLOPs per cycle/core
    caches: tuple[CacheLevel, ...] = field(default_factory=tuple)
    dram_bandwidth_bytes_per_s: float = 80e9  # socket-level
    sync_overhead_s: float = 2e-6  # per parallel region (fork/join + barrier)

    def __post_init__(self) -> None:
        check_positive(self.cores, "cores")
        check_positive(self.clock_hz, "clock_hz")
        check_positive(self.flops_per_cycle, "flops_per_cycle")
        check_positive(self.dram_bandwidth_bytes_per_s, "dram_bandwidth")

    @property
    def peak_flops_per_core(self) -> float:
        return self.clock_hz * self.flops_per_cycle

    def private_cache_bytes(self, cores_used: int = 1) -> int:
        """Combined private (non-shared) cache capacity of ``cores_used`` cores.

        The paper's Section VI-E.1 observation — baselines scaling
        super-linearly when the matrix fits across 16 private caches but
        not in one — falls out of this quantity.
        """
        if not 1 <= cores_used <= self.cores:
            raise ValueError(f"cores_used must be in [1, {self.cores}], got {cores_used}")
        private = sum(c.size_bytes for c in self.caches if not c.shared)
        return private * cores_used

    def shared_cache_bytes(self) -> int:
        return sum(c.size_bytes for c in self.caches if c.shared)

    def effective_bandwidth(self, working_set_bytes: int, cores_used: int) -> float:
        """Aggregate sustainable bandwidth for a working set of a given size.

        Picks the slowest level that still has to be traversed: if the set
        fits in private caches it streams at cache bandwidth × cores; if it
        fits in the shared L3 it streams at L3 bandwidth (shared, scaling
        ~sqrt with cores); otherwise it is DRAM-bound (barely scales).
        """
        check_positive(working_set_bytes, "working_set_bytes")
        private = [c for c in self.caches if not c.shared]
        if private and working_set_bytes <= self.private_cache_bytes(cores_used):
            # Streams from the innermost private level large enough on one core.
            per_core = working_set_bytes / cores_used
            for level in private:
                if per_core <= level.size_bytes:
                    return level.bandwidth_bytes_per_s * cores_used
            return private[-1].bandwidth_bytes_per_s * cores_used
        shared = [c for c in self.caches if c.shared]
        if shared and working_set_bytes <= self.shared_cache_bytes():
            # Shared L3: bandwidth grows sub-linearly with contending cores.
            lvl = shared[-1]
            return lvl.bandwidth_bytes_per_s * (1 + 0.35 * (cores_used - 1))
        # DRAM-bound: one core cannot saturate the socket; many cores gain
        # only the remaining headroom.
        single = self.dram_bandwidth_bytes_per_s * 0.35
        return min(
            self.dram_bandwidth_bytes_per_s,
            single * (1 + 0.14 * (cores_used - 1)),
        )


XEON_GOLD_6130 = MachineSpec(
    name="Intel Xeon Gold 6130 (Skylake, 16 cores @ 2.1 GHz)",
    cores=16,
    clock_hz=2.1e9,
    flops_per_cycle=16.0,  # sustained AVX-512 single-precision for MKL SpMM
    # (peak is 64 FLOPs/cycle with two FMA units; sparse kernels sustain ~1/4)
    caches=(
        CacheLevel("L1d", 32 * 1024, shared=False, bandwidth_bytes_per_s=150e9),
        CacheLevel("L2", 1024 * 1024, shared=False, bandwidth_bytes_per_s=75e9),
        CacheLevel("L3", 22 * 1024 * 1024, shared=True, bandwidth_bytes_per_s=40e9),
    ),
    dram_bandwidth_bytes_per_s=85e9,
    sync_overhead_s=2e-6,
)
