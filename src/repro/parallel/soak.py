"""Shard soak: worker-kill storms against the supervised process executor.

The crashsim analogue for multi-process execution (`repro shard-soak`):
many supervised executions of the same sharded plan under randomized
process-level chaos — workers SIGKILLed at random sync points, workers
stalled past the heartbeat deadline, torn shared-memory writes with
lying commits — each execution against a *fresh* dense operand (a torn
write is invisible when the staged output already holds the identical
previous answer, so varying the operand is what gives the torn-write
drill teeth) and each result compared elementwise against the CSR
reference product.

The harness proves, with a nonzero exit on any violation:

* **zero wrong** — every served result matches the reference;
* **zero hung** — every execution finishes inside its wall deadline;
* **faults handled** — the storm actually injected faults, and each one
  was absorbed by retry, quarantine/thread fallback, or whole-plan
  degradation (the supervisor's counters are cross-checked against the
  injector's deterministic replay);
* **zero leaks** — no ``repro-shm-*`` segment survives the run.

``supervised=False`` is the negative control: the same storm against
:func:`~repro.parallel.supervisor.unsupervised_execute`, whose wrong
answers / crashes *must* trip the same checks — CI runs it expecting a
nonzero exit, proving the checks can fail.
"""

from __future__ import annotations

import time

import numpy as np

from repro.parallel import shm
from repro.parallel.shard import ShardedPlan
from repro.parallel.supervisor import ShardSupervisor, unsupervised_execute
from repro.reliability.chaos import ShardChaos
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm


def _soak_graph(n: int, avg_degree: float, seed: int) -> CSRMatrix:
    from repro.graphs.generators import erdos_renyi_graph

    return erdos_renyi_graph(n, avg_degree, seed=seed)


def run_shard_soak(
    a: CSRMatrix | None = None,
    *,
    n: int = 400,
    avg_degree: float = 12.0,
    num_shards: int = 4,
    workers: int = 2,
    executions: int = 24,
    columns: int = 8,
    variant: str = "DAD",
    kill_rate: float = 0.12,
    stall_rate: float = 0.08,
    torn_rate: float = 0.12,
    stall_seconds: float = 3.0,
    heartbeat_timeout_s: float = 0.75,
    deadline_s: float = 20.0,
    quarantine_after: int = 3,
    supervised: bool = True,
    seed: int = 0,
    progress=None,
) -> dict:
    """Run the storm; returns the report dict (``report["ok"]`` gates CI).

    ``deadline_s`` is the per-execution hang budget — generous relative
    to the compute (milliseconds) but finite, so a supervisor that loses
    track of a shard shows up as *hung*, not as a forever-blocked job.
    """
    t_start = time.monotonic()
    swept = shm.sweep_stale()
    if a is None:
        a = _soak_graph(n, avg_degree, seed)
    rng = np.random.default_rng(seed + 1)
    diag = None
    if variant in ("AD", "DAD"):
        deg = a.row_nnz().astype(np.float64)
        diag = 1.0 / np.sqrt(deg + 1.0)
    chaos = ShardChaos(
        kill_rate=kill_rate,
        stall_rate=stall_rate,
        torn_rate=torn_rate,
        stall_seconds=stall_seconds,
        seed=seed,
    )

    plan = ShardedPlan(a, num_shards=num_shards, variant=variant, diag=diag)
    sup = (
        ShardSupervisor(
            plan,
            workers=workers,
            heartbeat_timeout_s=heartbeat_timeout_s,
            chaos=chaos,
            quarantine_after=quarantine_after,
            seed=seed,
        )
        if supervised
        else None
    )

    wrong = hung = errors = 0
    latencies: list[float] = []
    violations: list[str] = []
    try:
        for k in range(executions):
            b = rng.standard_normal((a.shape[1], columns)).astype(np.float32)
            expected = _reference(a, b, variant, diag)
            t0 = time.monotonic()
            try:
                if supervised:
                    got = sup.execute(b)
                else:
                    got = unsupervised_execute(
                        plan, b, workers=workers, chaos=chaos, timeout_s=deadline_s
                    )
            except Exception as exc:
                errors += 1
                violations.append(f"execution {k} raised {type(exc).__name__}: {exc}")
                continue
            elapsed = time.monotonic() - t0
            latencies.append(elapsed)
            if elapsed > deadline_s:
                hung += 1
                violations.append(f"execution {k} exceeded deadline: {elapsed:.2f}s")
            if not np.allclose(got, expected, rtol=1e-4, atol=1e-4):
                wrong += 1
                err = float(np.nanmax(np.abs(got - expected)))
                violations.append(f"execution {k} wrong result (max err {err:.3g})")
            if progress is not None:
                progress(k + 1, executions, elapsed, wrong, hung)
    finally:
        if sup is not None:
            sup.close()
        plan.release()

    # Replay the injector to count what the storm actually dealt.  Epochs
    # are 1-based per process execution; attempts beyond 0 add more — the
    # replay undercounts retries, which is fine: it exists to prove the
    # storm was non-empty, not to reconcile bookkeeping.
    faults_decided = sum(
        1
        for epoch in range(1, executions + 1)
        for s in range(num_shards)
        if chaos.decide(s, epoch, 0) is not None
    )
    leaked = shm.list_segments()
    stats = sup.stats if sup is not None else {}
    handled = (
        stats.get("shard_retries", 0)
        + stats.get("quarantines", 0)
        + stats.get("thread_fallbacks", 0)
        + stats.get("heartbeat_kills", 0)
        + stats.get("checksum_rejects", 0)
        + stats.get("degraded_executions", 0)
    )
    checks = {
        "zero_wrong": wrong == 0,
        "zero_hung": hung == 0,
        "zero_errors": errors == 0,
        "storm_nonempty": faults_decided > 0,
        "faults_handled": (not supervised) or faults_decided == 0 or handled > 0,
        "no_shm_leak": len(leaked) == 0,
    }
    for name, ok in checks.items():
        if not ok and name not in ("zero_wrong", "zero_hung", "zero_errors"):
            violations.append(f"check failed: {name}")
    if leaked:
        violations.append(f"leaked /dev/shm segments: {leaked}")
    return {
        "workload": {
            "nodes": int(a.shape[0]),
            "nnz": int(a.nnz),
            "variant": variant,
            "num_shards": num_shards,
            "workers": workers,
            "columns": columns,
            "executions": executions,
            "supervised": supervised,
        },
        "chaos": chaos.describe(),
        "faults_decided": faults_decided,
        "wrong": wrong,
        "hung": hung,
        "errors": errors,
        "latency_p50_ms": float(np.median(latencies) * 1e3) if latencies else None,
        "latency_max_ms": float(np.max(latencies) * 1e3) if latencies else None,
        "supervisor": sup.describe() if sup is not None else None,
        "swept_at_start": swept,
        "leaked_segments": leaked,
        "checks": checks,
        "violations": violations,
        "ok": all(checks.values()) and not violations,
        "elapsed_s": round(time.monotonic() - t_start, 2),
    }


def _reference(a: CSRMatrix, b: np.ndarray, variant: str, diag) -> np.ndarray:
    """The independent CSR reference product for the soak's comparisons."""
    if variant == "A":
        return spmm(a, b)
    if variant == "AD":
        return spmm(a, b * diag[:, None].astype(b.dtype))
    # DAD: d ⊙ (A @ (d ⊙ b))
    scaled = spmm(a, b * diag[:, None].astype(b.dtype))
    return scaled * diag[:, None].astype(scaled.dtype)
