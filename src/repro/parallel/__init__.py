"""Parallel execution substrate (paper Section V-B and VI).

The paper evaluates on a 16-core Intel Xeon Gold 6130 with OpenMP thread
pinning.  This container has one CPU, so this package provides two layers:

* :mod:`repro.parallel.executor` — a *real* thread-pool execution of the
  CBM update stage over compression-tree branches.  Correct on any core
  count (verified by tests); it simply cannot show 16-way scaling here.
* :mod:`repro.parallel.shard`, :mod:`repro.parallel.supervisor`,
  :mod:`repro.parallel.shm`, :mod:`repro.parallel.soak` — *process*
  parallelism (ROADMAP item 2): degree-aware row-block shards with
  per-shard compression trees, operands in registered shared memory, a
  crash-isolating shard supervisor (heartbeats, retry with jittered
  backoff, quarantine, breaker-laddered degradation to the in-process
  path), and the worker-kill soak harness behind ``repro shard-soak``.
* :mod:`repro.parallel.machine`, :mod:`repro.parallel.cache`,
  :mod:`repro.parallel.schedule`, :mod:`repro.parallel.simulate` — a
  shared-memory machine model (cores, cache hierarchy, bandwidth) and a
  dynamic branch scheduler that *predict* sequential and 16-core execution
  times for the CSR baseline and the CBM kernels from their operation and
  traffic counts.  The simulator reproduces the paper's parallel shape:
  alpha raising the virtual root's out-degree raises parallelism, and
  cache capacity effects let the baseline scale better on graphs whose
  CSR form fits the combined private caches (Section VI-E.1).
"""

from repro.parallel.cache import CacheModel, WorkingSet, plan_working_set
from repro.parallel.executor import ThreadedUpdateExecutor, parallel_matmul
from repro.parallel.machine import XEON_GOLD_6130, CacheLevel, MachineSpec
from repro.parallel.report import cost_breakdown, render_breakdown
from repro.parallel.scaling import ScalingPoint, parallel_efficiency, saturation_cores, strong_scaling_curve
from repro.parallel.schedule import (
    ScheduleResult,
    branch_costs_from_branches,
    plan_update_schedule,
    simulate_dynamic_schedule,
)
from repro.parallel.shard import ShardedPlan
from repro.parallel.simulate import KernelCost, predict_cbm_spmm, predict_csr_spmm
from repro.parallel.supervisor import ShardSupervisor, unsupervised_execute
from repro.parallel.trace import ScheduleTrace, TaskEvent, render_gantt, traced_schedule

__all__ = [
    "CacheLevel",
    "MachineSpec",
    "XEON_GOLD_6130",
    "CacheModel",
    "WorkingSet",
    "plan_working_set",
    "ScheduleResult",
    "branch_costs_from_branches",
    "plan_update_schedule",
    "simulate_dynamic_schedule",
    "ThreadedUpdateExecutor",
    "parallel_matmul",
    "ShardedPlan",
    "ShardSupervisor",
    "unsupervised_execute",
    "KernelCost",
    "predict_cbm_spmm",
    "predict_csr_spmm",
    "ScheduleTrace",
    "TaskEvent",
    "render_gantt",
    "traced_schedule",
    "cost_breakdown",
    "render_breakdown",
    "ScalingPoint",
    "parallel_efficiency",
    "saturation_cores",
    "strong_scaling_curve",
]
