"""ShardSupervisor: fault-tolerant execution of a :class:`ShardedPlan`.

Process parallelism adds failure modes the thread-era reliability stack
cannot see: a worker SIGKILLed mid-branch, a worker stalled in a hung
syscall, a slice written but never finished.  The supervisor closes that
gap with the same posture the serving layer already uses — detect,
retry, quarantine, degrade — and never serves an unverified buffer:

* **detection** — a worker death surfaces as a broken pool / failed
  future; a *stall* is caught by the per-shard heartbeat deadline (the
  process-level extension of the thread executor's watchdog contract):
  workers stamp ``time.monotonic()`` into the shared status board at
  every sync point, and a shard whose stamp goes stale gets its pool
  killed and respawned;
* **retry** — failed shards are resubmitted with decorrelated-jitter
  backoff (:class:`~repro.serving.backoff.RetryPolicy`); the attempt
  number feeds the chaos/fault seed, so a transient fault does not
  deterministically recur;
* **quarantine & degradation** — a shard failing ``quarantine_after``
  consecutive attempts is quarantined: it runs on the in-process thread
  path (its own :class:`~repro.runtime.plan.KernelPlan`) while healthy
  shards keep the pool.  Every internal failure is also reported to the
  :class:`~repro.serving.breaker.CircuitBreaker`
  (``note_internal_failure``), so persistent process-path rot walks the
  whole plan down the existing FAST → GUARDED → DEGRADED ladder:
  GUARDED upgrades commit verification from epoch-only to per-slice
  checksums, DEGRADED abandons the pool entirely.  Quarantine is cleared
  whenever the breaker climbs back (the probe that proves the pool
  healthy again should get the whole pool);
* **restore-or-invalidate** — a shard result only counts once its
  commit (epoch, and at GUARDED+ its slice checksum) verifies against
  the shared output; if even the thread fallback cannot produce a shard,
  the output is NaN-poisoned and :class:`~repro.errors.ShardError`
  raised — exactly the thread executor's buffer contract.

Shared-memory hygiene: the supervisor sweeps stale segments of dead
processes at startup (:func:`repro.parallel.shm.sweep_stale`), and
:meth:`close` / context exit drains the plan's segments; the module-level
``atexit`` reaper in :mod:`repro.parallel.shm` covers every other exit.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.errors import ShardError
from repro.parallel import shm
from repro.parallel.executor import _invalidate
from repro.parallel.shard import EPOCH, HEARTBEAT, ShardedPlan, ShardTask, run_shard
from repro.serving.backoff import RetryPolicy
from repro.serving.breaker import CircuitBreaker, ServeTier


def _pool_context():
    """Pick a start method for worker pools.

    ``fork`` is fastest for the many short-lived pools the supervisor
    spawns, but forking a *multithreaded* parent can deadlock workers on
    locks held by threads that do not survive the fork — and the
    supervisor is designed to share a breaker with the thread-heavy
    serving layer (CPython deprecates fork-with-threads for exactly this
    reason).  The design is start-method agnostic — workers attach
    segments by name and the worker fn is module-level — so when the
    parent has live threads, prefer ``forkserver``/``spawn``; only a
    single-threaded parent gets ``fork``.
    """
    methods = multiprocessing.get_all_start_methods()
    if threading.active_count() > 1:
        for method in ("forkserver", "spawn"):
            if method in methods:
                return multiprocessing.get_context(method)
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ShardSupervisor:
    """Crash-isolating executor for a :class:`ShardedPlan`.

    Parameters
    ----------
    plan:
        The sharded plan to execute (not owned unless ``own_plan``).
    workers:
        Process-pool width.
    breaker:
        The degradation ladder; a private one is built if not given
        (sharing the serving layer's breaker wires shard health into the
        same ladder the guard already feeds).
    heartbeat_timeout_s:
        How stale a dispatched, uncommitted shard's heartbeat may go
        before the pool is declared hung and killed.
    retry:
        Attempt budget and backoff jitter per shard per execution.
    quarantine_after:
        Consecutive failed attempts before a shard is quarantined onto
        the thread path.
    chaos:
        Optional picklable fault injector (see
        :class:`~repro.reliability.chaos.ShardChaos`); shipped to workers
        inside each task.  Supplying one also forces checksum
        verification — injected torn writes *lie* in their epoch commit
        by design, and epoch-only verification must not be the thing
        standing between a drill and a wrong answer.
    mp_context:
        Optional multiprocessing context for worker pools.  Default: the
        :func:`_pool_context` heuristic at each pool (re)spawn.  Pin it
        when comparing against another executor (the scaling bench does —
        a fork pool and a forkserver pool have different worker memory
        layouts, which reads as fake overhead).
    """

    def __init__(
        self,
        plan: ShardedPlan,
        *,
        workers: int = 2,
        breaker: CircuitBreaker | None = None,
        heartbeat_timeout_s: float = 5.0,
        poll_interval_s: float = 0.02,
        retry: RetryPolicy | None = None,
        quarantine_after: int = 2,
        chaos=None,
        mp_context=None,
        seed: int = 0,
        own_plan: bool = False,
        sweep_on_start: bool = True,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        if sweep_on_start:
            self.swept_at_start = shm.sweep_stale()
        else:
            self.swept_at_start = []
        self.plan = plan
        self.workers = workers
        self.breaker = breaker or CircuitBreaker(cooldown_s=0.25, max_cooldown_s=8.0)
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_interval_s = poll_interval_s
        self.retry = retry or RetryPolicy(max_attempts=3, base_s=0.005, cap_s=0.1)
        self.quarantine_after = quarantine_after
        self.chaos = chaos
        self._mp_context = mp_context
        self._own_plan = own_plan
        self._rng = np.random.default_rng(seed)
        self._pool: ProcessPoolExecutor | None = None
        # Seeded from the shared status board, never 0: the board outlives
        # any one supervisor, and reusing an epoch number already committed
        # there would let a dead/stalled shard's stale slice pass
        # verification (its CRC matches the stale bytes, so even checksum
        # mode cannot catch the collision).
        self._epoch = int(plan.status[:, EPOCH].max())
        self._consecutive_failures = [0] * plan.num_shards
        self.quarantined: set[int] = set()
        #: most recent worker-side failure per shard, for post-mortems
        self.last_errors: dict[int, str] = {}
        self.stats = {
            "executions": 0,
            "shard_retries": 0,
            "pool_respawns": 0,
            "heartbeat_kills": 0,
            "checksum_rejects": 0,
            "quarantines": 0,
            "thread_fallbacks": 0,
            "degraded_executions": 0,
        }

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context or _pool_context(),
            )
            self.stats["pool_respawns"] += 1
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down hard: kill workers, discard the executor."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, ValueError, AttributeError):  # already gone / reaped
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._kill_pool()
        if self._own_plan:
            self.plan.release()

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def execute(self, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Supervised ``M @ b``; returns a private (non-shared) result array.

        The serving tier comes from the breaker: FAST verifies commits by
        epoch, GUARDED re-checksums every slice, DEGRADED runs the whole
        plan in-process.  The outcome (including one that needed internal
        retries) is recorded back, so repeated trouble degrades future
        executions and sustained health climbs back up.
        """
        tier, probe = self.breaker.acquire()
        ok = False
        try:
            if tier is ServeTier.DEGRADED:
                self.stats["degraded_executions"] += 1
                result = self.plan.execute_threaded(b, out=out)
            else:
                checksum = tier is ServeTier.GUARDED or self.chaos is not None
                result = self._execute_processes(b, out=out, checksum=checksum)
            ok = True
            return result
        finally:
            self.breaker.record(tier, ok, probe=probe)
            if ok and tier is ServeTier.FAST and self.quarantined:
                # The pool just proved itself end-to-end at full trust;
                # give quarantined shards another chance next time.
                self.quarantined.clear()

    # ------------------------------------------------------------------
    def _execute_processes(
        self, b: np.ndarray, *, out: np.ndarray | None, checksum: bool
    ) -> np.ndarray:
        """Run one supervised epoch; writes the result into ``out`` in place
        when the caller provides it (restore-or-invalidate: on an
        unrecoverable shard the staged output is NaN-poisoned and a
        :class:`ShardError` raised before anything is copied out)."""
        plan = self.plan
        # Advance past every epoch the shared board has ever seen, not just
        # our own counter: unsupervised_execute and other supervisors write
        # to the same board, and an epoch collision with a stale commit
        # makes an undone shard look done (see _dispatch_round).
        epoch = max(self._epoch, int(plan.status[:, EPOCH].max())) + 1
        self._epoch = epoch
        self.stats["executions"] += 1
        b = np.ascontiguousarray(b)
        b_spec, out_spec, out_view = plan.stage(b)

        pending: list[int] = []
        for s in plan.shards:
            if s.spec.is_zero:
                out_view[s.lo:s.hi] = 0
                plan.status[s.index, EPOCH] = float(epoch)
            elif s.index in self.quarantined:
                self.stats["thread_fallbacks"] += 1
                plan.execute_shard_threaded(s.index, b, out_view)
            else:
                pending.append(s.index)

        attempts = dict.fromkeys(pending, 0)
        delays = {i: self.retry.delays(self._rng) for i in pending}
        while pending:
            failed = self._dispatch_round(pending, b_spec, out_spec, epoch, attempts)
            for i in pending:
                if i in failed:
                    continue
                if plan.verify_shard(i, epoch, out_view, checksum=checksum):
                    self._consecutive_failures[i] = 0
                else:
                    if plan.committed_epoch(i) == epoch:
                        self.stats["checksum_rejects"] += 1
                        # A lying commit is worse than a death: force the
                        # stale commit out so a retry must re-commit.
                        plan.status[i, EPOCH] = 0.0
                    failed.add(i)
            for i in sorted(failed):
                attempts[i] += 1
                self._consecutive_failures[i] += 1
                self.breaker.note_internal_failure()
                if (
                    self._consecutive_failures[i] >= self.quarantine_after
                    or attempts[i] >= self.retry.max_attempts
                ):
                    self.quarantined.add(i)
                    self.stats["quarantines"] += 1
                    self.stats["thread_fallbacks"] += 1
                    try:
                        plan.execute_shard_threaded(i, b, out_view)
                    except Exception as exc:
                        _invalidate(out_view)
                        raise ShardError(
                            f"shard {i} failed {attempts[i]} process attempts and "
                            f"the thread fallback; output invalidated"
                        ) from exc
                else:
                    self.stats["shard_retries"] += 1
                    time.sleep(next(delays[i]))
            pending = [i for i in sorted(failed) if i not in self.quarantined]

        result = np.array(out_view, copy=True) if out is None else out
        if out is not None:
            out[...] = out_view
        return result

    def _dispatch_round(
        self,
        indices: list[int],
        b_spec: shm.ArraySpec,
        out_spec: shm.ArraySpec,
        epoch: int,
        attempts: dict[int, int],
    ) -> set[int]:
        """Submit one round of shards; returns the set that did not finish.

        A shard is *finished* when its future resolves or its status-board
        epoch commit lands — the commit is authoritative, because a pool
        teardown can lose futures for work that already committed.
        """
        plan = self.plan
        pool = self._ensure_pool()
        try:
            futures = {
                pool.submit(
                    run_shard,
                    ShardTask(
                        spec=plan.shards[i].spec,
                        b=b_spec,
                        out=out_spec,
                        status=plan.status_spec,
                        epoch=epoch,
                        attempt=attempts[i],
                        chaos=self.chaos,
                    ),
                ): i
                for i in indices
            }
        except BrokenProcessPool:
            self._kill_pool()
            return set(indices)
        submitted_at = time.monotonic()
        failed: set[int] = set()
        while futures:
            done, _ = wait(
                futures, timeout=self.poll_interval_s, return_when=FIRST_COMPLETED
            )
            for fut in done:
                i = futures.pop(fut)
                try:
                    fut.result()
                except BrokenProcessPool:
                    # Worker death poisons the whole executor: discard it
                    # so the next round gets a fresh pool.
                    failed.add(i)
                    self._kill_pool()
                except Exception as exc:
                    # Chaos fault or a genuine kernel error: either way
                    # this shard did not commit this epoch.
                    failed.add(i)
                    self.last_errors[i] = f"{type(exc).__name__}: {exc}"
            if not futures:
                break
            now = time.monotonic()
            stale = [
                i
                for i in futures.values()
                if now - max(float(plan.status[i, HEARTBEAT]), submitted_at)
                > self.heartbeat_timeout_s
            ]
            if stale:
                # A hung worker never raises; the heartbeat deadline is
                # the only signal.  Kill the whole pool (the stalled
                # process may hold shared locks) and fail everything that
                # has not committed — committed shards stay good.
                self.stats["heartbeat_kills"] += 1
                self._kill_pool()
                for i in futures.values():
                    if plan.committed_epoch(i) != epoch:
                        failed.add(i)
                break
        return failed

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "workers": self.workers,
            "num_shards": self.plan.num_shards,
            "quarantined": sorted(self.quarantined),
            "breaker": self.breaker.describe(),
            "stats": dict(self.stats),
            "last_errors": dict(self.last_errors),
            "swept_at_start": len(self.swept_at_start),
        }


def unsupervised_execute(
    plan: ShardedPlan,
    b: np.ndarray,
    *,
    workers: int = 2,
    chaos=None,
    timeout_s: float = 30.0,
    pool: ProcessPoolExecutor | None = None,
) -> np.ndarray:
    """Run every shard exactly once with no supervision — the negative
    control for the soak harness, and the bare-dispatch baseline the
    scaling bench measures supervision overhead against.  No heartbeats,
    no retries, no commit verification: whatever lands in the output
    segment is returned, and a dead worker raises.  Under fault injection
    this must produce wrong answers or exceptions — if it does not, the
    soak's chaos has no teeth.

    Pass ``pool`` to reuse a warm executor across calls (the bench does,
    so pool spawn cost does not pollute the overhead comparison);
    otherwise a fresh pool is created and torn down per call.
    """
    b = np.ascontiguousarray(b)
    b_spec, out_spec, out_view = plan.stage(b)
    epoch = int(plan.status[:, EPOCH].max()) + 1
    live = []
    for s in plan.shards:
        if s.spec.is_zero:
            out_view[s.lo:s.hi] = 0
        else:
            live.append(s.index)

    def _submit_all(executor: ProcessPoolExecutor) -> None:
        futures = [
            executor.submit(
                run_shard,
                ShardTask(
                    spec=plan.shards[i].spec,
                    b=b_spec,
                    out=out_spec,
                    status=plan.status_spec,
                    epoch=epoch,
                    chaos=chaos,
                ),
            )
            for i in live
        ]
        for fut in futures:
            fut.result(timeout=timeout_s)

    if pool is not None:
        _submit_all(pool)
    else:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as owned:
            _submit_all(owned)
    return np.array(out_view, copy=True)
