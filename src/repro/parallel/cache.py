"""Working-set and memory-traffic model for SpMM kernels.

The simulator's time estimate is ``max(compute_time, traffic /
effective_bandwidth)`` — a roofline over the machine model.  This module
computes the two kernel-specific inputs: the *working set* (which decides
the bandwidth tier) and the *traffic* (bytes actually moved).

The working-set reasoning mirrors the paper's own cache explanation
(Section VI-E.1): the sparse operand (CSR arrays or CBM delta CSR) is
re-streamed once per pass over the dense operand, while the dense operand
and output are streamed per pass but may be blocked; what matters for
scaling is whether the *sparse* structure fits the private caches of the
cores in use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.machine import MachineSpec
from repro.utils.validation import check_nonnegative


@dataclass(frozen=True)
class WorkingSet:
    """Bytes a kernel touches, split by reuse class."""

    sparse_bytes: int  # matrix structure: re-streamed, reuse across columns
    dense_bytes: int  # right-hand operand + output: streamed
    scratch_bytes: int = 0

    def __post_init__(self) -> None:
        check_nonnegative(self.sparse_bytes, "sparse_bytes")
        check_nonnegative(self.dense_bytes, "dense_bytes")
        check_nonnegative(self.scratch_bytes, "scratch_bytes")

    @property
    def total(self) -> int:
        return self.sparse_bytes + self.dense_bytes + self.scratch_bytes


class CacheModel:
    """Estimate traffic and bandwidth-bound time for a kernel on a machine."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine

    def resident_tier(self, ws: WorkingSet, cores_used: int) -> str:
        """Which capacity tier the *sparse* structure lives in.

        Returns ``"private"``, ``"shared"``, or ``"dram"`` — the quantity
        behind the paper's observation that mid-size graphs let the CSR
        baseline scale super-linearly on 16 cores.
        """
        m = self.machine
        if ws.sparse_bytes <= m.private_cache_bytes(cores_used):
            return "private"
        if ws.sparse_bytes <= m.private_cache_bytes(cores_used) + m.shared_cache_bytes():
            return "shared"
        return "dram"

    def traffic_bytes(self, ws: WorkingSet, passes: float = 1.0) -> float:
        """Bytes moved: sparse structure + dense stream, per pass."""
        check_nonnegative(passes, "passes")
        return passes * (ws.sparse_bytes + ws.dense_bytes) + ws.scratch_bytes

    def bandwidth_time(self, ws: WorkingSet, cores_used: int, passes: float = 1.0) -> float:
        """Seconds to move the kernel's traffic at the tier's bandwidth."""
        bw = self.machine.effective_bandwidth(max(ws.total, 1), cores_used)
        return self.traffic_bytes(ws, passes) / bw


def plan_working_set(plan, p: int, dtype=None) -> WorkingSet:
    """Working set of one planned CBM SpMM execution.

    The sparse side is the plan's (scaled) delta CSR; the dense side is
    the streamed operand ``B`` (m × p) plus the output ``C`` (n × p);
    scratch counts the plan's idle pooled workspace.  Feeding the plan
    (not the raw matrix) keeps the accounting consistent with what
    ``KernelPlan.execute`` actually touches.
    """
    import numpy as np

    check_nonnegative(p, "p")
    itemsize = np.dtype(dtype or np.float32).itemsize
    n, m = plan.shape
    return WorkingSet(
        sparse_bytes=plan.operand.memory_bytes(),
        dense_bytes=(n + m) * p * itemsize,
        scratch_bytes=plan.workspace_bytes(),
    )
