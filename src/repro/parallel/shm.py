"""Shared-memory segment registry: the hygiene layer under sharded execution.

Process-parallel execution keeps Property 3 (no extra memory) only if the
dense operand, the output, and the per-shard sparse structures live in
`multiprocessing.shared_memory` segments that every worker attaches
instead of copying.  Shared memory, unlike heap memory, **outlives the
process that created it**: a kill-9'd run would leave its segments in
``/dev/shm`` forever.  This module is therefore the single place where
segments are created, and it guarantees three things:

* **registration** — every segment created here is recorded in a
  process-wide registry (:func:`create_segment`); the contract linter's
  SC601 rule flags any ``SharedMemory(...)`` call outside this module,
  so nothing can allocate an untracked segment;
* **drain on retirement** — :func:`release_segment` / :func:`drain_all`
  close *and unlink* registered segments when a sharded plan is retired
  or the process exits normally (an ``atexit`` hook runs
  :func:`drain_all`, so an interrupted bench or Ctrl-C'd soak leaks
  nothing);
* **sweep after kill-9** — segment names embed the creating PID
  (``repro-shm-<pid>-<nonce>``); :func:`sweep_stale` unlinks any segment
  of this naming scheme whose creator is dead *and* whose ``/dev/shm``
  entry is at least :data:`STALE_MIN_AGE_S` old.  The age gate protects
  against namespaces where the PID test is unreliable: with ``/dev/shm``
  shared across PID namespaces (containers with shared IPC) a live run's
  creator PID is invisible here, and only that run's *fresh* segments
  are at risk of being swept mid-use.  (The converse error — a recycled
  PID making a truly stale segment look alive — leaves a leak bounded by
  the recycled PID's lifetime; the next sweep after it exits collects
  it.)  The shard supervisor sweeps at startup and the soak harness
  asserts ``/dev/shm`` is clean at the end, so even SIGKILL storms
  cannot accumulate segments.

Workers never create segments; they :func:`attach_ndarray` by name and
close (never unlink) their mapping.  On non-Linux platforms without
``/dev/shm`` the sweep degrades to a no-op over the registry only.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

PREFIX = "repro-shm"
_SHM_DIR = "/dev/shm"

#: Minimum ``/dev/shm`` entry age before a dead-PID segment is sweepable.
#: Guards shared-IPC-namespace setups where a *live* sibling run's PID is
#: not visible to ``os.kill(pid, 0)``: its in-use segments are young, so
#: an age gate keeps the sweep away from them.
STALE_MIN_AGE_S = 60.0

_REGISTRY: dict[str, shared_memory.SharedMemory] = {}
_LOCK = threading.Lock()


def _new_name() -> str:
    return f"{PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create and register a shared-memory segment owned by this process.

    The only sanctioned way to allocate shared memory in this codebase
    (SC601 enforces it): the segment is recorded in the registry, so
    :func:`drain_all` — and through it the ``atexit`` reaper — will
    close and unlink it even if the caller never does.
    """
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    seg = shared_memory.SharedMemory(create=True, size=int(nbytes), name=_new_name())
    with _LOCK:
        _REGISTRY[seg.name] = seg
    return seg


def release_segment(name: str) -> bool:
    """Close and unlink one registered segment; True if it was registered."""
    with _LOCK:
        seg = _REGISTRY.pop(name, None)
    if seg is None:
        return False
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # already swept (e.g. by a parallel reaper)
        pass
    return True


def drain_all() -> int:
    """Close and unlink every registered segment; returns how many.

    Registered as an ``atexit`` hook so a normal or Ctrl-C interpreter
    exit never leaves ``/dev/shm`` debris behind; also called by the
    soak/bench teardown paths explicitly.
    """
    with _LOCK:
        names = list(_REGISTRY)
    return sum(release_segment(n) for n in names)


def registered_segments() -> list[str]:
    """Names currently held by this process's registry."""
    with _LOCK:
        return sorted(_REGISTRY)


atexit.register(drain_all)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists but owned by someone else
        return True
    return True


def _segment_age_s(fname: str) -> float:
    """Age of a ``/dev/shm`` entry; 0.0 if it vanished (too young to sweep)."""
    try:
        return time.time() - os.stat(os.path.join(_SHM_DIR, fname)).st_mtime
    except OSError:
        return 0.0


def list_stale_segments(min_age_s: float = STALE_MIN_AGE_S) -> list[str]:
    """Segment names in ``/dev/shm`` whose creating process is dead.

    A dead-PID segment only counts as stale once its entry is at least
    ``min_age_s`` old: a PID that is merely *invisible* (shared ``/dev/shm``
    across PID namespaces) is indistinguishable from a dead one, and the
    age gate keeps the sweep away from another live run's fresh buffers.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    out = []
    for fname in os.listdir(_SHM_DIR):
        if not fname.startswith(PREFIX + "-"):
            continue
        if _segment_age_s(fname) < min_age_s:
            continue
        parts = fname.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            pid = -1
        if pid < 0 or not _pid_alive(pid):
            out.append(fname)
    return sorted(out)


def list_segments() -> list[str]:
    """Every ``repro-shm-*`` segment currently present in ``/dev/shm``.

    The leak checks (soak harness, benchmark conftest) call this after a
    run: a non-empty answer from any process means hygiene failed.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return registered_segments()
    return sorted(f for f in os.listdir(_SHM_DIR) if f.startswith(PREFIX + "-"))


def sweep_stale(min_age_s: float = STALE_MIN_AGE_S) -> list[str]:
    """Unlink segments abandoned by dead processes; returns what was swept.

    Called at shard-supervisor startup and by the soak harness: a prior
    kill-9'd run cannot clean up after itself, so the *next* run does.
    Only entries older than ``min_age_s`` qualify (see
    :func:`list_stale_segments`).  Unlinks via the filesystem directly —
    attaching first would register the name with this process's resource
    tracker for no benefit.
    """
    swept = []
    for fname in list_stale_segments(min_age_s):
        try:
            os.unlink(os.path.join(_SHM_DIR, fname))
            swept.append(fname)
        except FileNotFoundError:
            pass
    return swept


# ---------------------------------------------------------------------------
# Typed array views over segments
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArraySpec:
    """Picklable descriptor of one ndarray stored inside a segment.

    Workers receive specs (never live arrays): ``segment`` names the
    shared-memory block, ``offset``/``shape``/``dtype`` locate the array
    inside it.  :func:`attach_ndarray` turns a spec back into a live
    view in the attaching process.
    """

    segment: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _view(buf, spec: ArraySpec) -> np.ndarray:
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=buf, offset=spec.offset)


class SegmentArena:
    """One registered segment holding several packed arrays.

    Built parent-side with :meth:`pack`; each packed array gets an
    :class:`ArraySpec` the workers can attach.  ``alignment`` keeps every
    array's offset a multiple of 16 so attached views stay aligned for
    vectorised kernels.
    """

    _ALIGN = 16

    def __init__(self, nbytes: int):
        self.segment = create_segment(max(int(nbytes), 1))
        self._cursor = 0

    @staticmethod
    def plan_bytes(arrays: list[np.ndarray]) -> int:
        """Upper bound on the arena size needed to pack ``arrays``."""
        return sum(a.nbytes + SegmentArena._ALIGN for a in arrays) + SegmentArena._ALIGN

    def pack(self, arr: np.ndarray) -> ArraySpec:
        """Copy ``arr`` into the arena; returns the worker-attachable spec."""
        arr = np.ascontiguousarray(arr)
        offset = -(-self._cursor // self._ALIGN) * self._ALIGN
        end = offset + arr.nbytes
        if end > self.segment.size:
            raise ValueError(
                f"arena overflow: need {end} bytes, segment has {self.segment.size}"
            )
        spec = ArraySpec(self.segment.name, offset, tuple(arr.shape), np.dtype(arr.dtype).str)
        _view(self.segment.buf, spec)[...] = arr
        self._cursor = end
        return spec

    def view(self, spec: ArraySpec) -> np.ndarray:
        """Parent-side view of a previously packed array."""
        if spec.segment != self.segment.name:
            raise ValueError(f"spec belongs to segment {spec.segment!r}, not this arena")
        return _view(self.segment.buf, spec)

    def release(self) -> None:
        release_segment(self.segment.name)


def shared_ndarray(shape, dtype) -> tuple[ArraySpec, np.ndarray, shared_memory.SharedMemory]:
    """A single registered shared array: (spec, parent view, segment)."""
    nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    seg = create_segment(max(nbytes, 1))
    spec = ArraySpec(seg.name, 0, tuple(int(s) for s in shape), np.dtype(dtype).str)
    return spec, _view(seg.buf, spec), seg


# Worker-side attachment cache: one mapping per segment per process.  A
# worker serves many tasks against the same plan's segments; re-mmapping
# per task would dominate small shards.  Keyed by segment name (insertion
# order doubles as LRU order — hits reinsert at the MRU end); names are
# never reused (PID + random nonce).
#
# Eviction is deliberately conservative: closing a SharedMemory unmaps it
# even while numpy views of its buffer are still alive (numpy does not
# hold a Py_buffer export, so nothing raises — the next read of such a
# view is a segfault).  The only mappings provably view-free are those of
# segments the owning plan has already *unlinked*: the parent never
# dispatches tasks for a released plan, and a task's views die with its
# frame.  So past the size bound we close exactly those; mappings of
# still-linked segments stay cached, and the cache is then bounded by the
# set of live plans — the true working set.
_ATTACH_CACHE: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CACHE_MAX = 64


def _segment_unlinked(name: str) -> bool:
    """True when the segment's backing file is gone from ``/dev/shm``.

    Without a ``/dev/shm`` to consult (non-Linux) nothing is provably
    unlinked and the cache simply does not evict.
    """
    return os.path.isdir(_SHM_DIR) and not os.path.exists(os.path.join(_SHM_DIR, name))


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACH_CACHE.pop(name, None)
    if seg is not None:
        _ATTACH_CACHE[name] = seg  # refresh LRU position
        return seg
    if len(_ATTACH_CACHE) >= _ATTACH_CACHE_MAX:
        for old in [n for n in _ATTACH_CACHE if _segment_unlinked(n)]:
            stale = _ATTACH_CACHE.pop(old)
            try:
                stale.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
    seg = shared_memory.SharedMemory(name=name)  # staticcheck: ignore[SC601]
    _ATTACH_CACHE[name] = seg
    return seg


def attach_ndarray(spec: ArraySpec) -> np.ndarray:
    """Worker-side view of a packed array (attach by name, cached).

    Never unlinks: ownership stays with the creating process's registry.
    """
    return _view(_attach_segment(spec.segment).buf, spec)
