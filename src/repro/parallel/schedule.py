"""Dynamic scheduling simulator for the CBM update stage (Section V-B).

The paper parallelises the update stage by handing each OpenMP thread
complete *branches* of the compression tree (subtrees of the virtual
root), using ``schedule(dynamic)`` to balance branches of uneven size.
This module replays that policy exactly — a list-scheduling simulation
with a greedy "next branch to the first free thread" rule — and reports
the makespan, per-thread utilisation, and the critical path.

This is where the paper's alpha-parallelism trade-off becomes measurable
offline: raising alpha increases the virtual root's out-degree (more,
smaller branches → better balance), at the cost of compression.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.tree import CompressionTree
from repro.errors import ParallelError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a simulated dynamic schedule."""

    makespan: float  # parallel time units (same unit as task costs)
    total_work: float  # sum of all task costs
    critical_path: float  # largest single task (a branch is atomic here)
    threads: int
    utilisation: float  # total_work / (threads * makespan)
    tasks: int

    @property
    def speedup(self) -> float:
        """Ideal-machine speedup of this schedule vs sequential replay."""
        return self.total_work / self.makespan if self.makespan > 0 else 1.0


def simulate_dynamic_schedule(costs: np.ndarray, threads: int) -> ScheduleResult:
    """List-schedule atomic tasks of the given costs onto ``threads`` workers.

    Implements OpenMP ``schedule(dynamic)`` with chunk size 1: tasks are
    taken from a shared queue in order; each idle thread grabs the next.
    Greedy list scheduling is within a factor 2 of optimal, same as the
    guarantee OpenMP's runtime gives the paper.
    """
    check_positive(threads, "threads")
    costs = np.asarray(costs, dtype=np.float64).ravel()
    if np.any(costs < 0):
        raise ParallelError("task costs must be non-negative")
    if len(costs) == 0:
        return ScheduleResult(0.0, 0.0, 0.0, threads, 1.0, 0)
    heap = [0.0] * min(threads, len(costs))
    heapq.heapify(heap)
    for c in costs:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(c))
    makespan = max(heap)
    total = float(costs.sum())
    util = total / (threads * makespan) if makespan > 0 else 1.0
    return ScheduleResult(
        makespan=makespan,
        total_work=total,
        critical_path=float(costs.max()),
        threads=threads,
        utilisation=util,
        tasks=len(costs),
    )


def branch_costs_from_branches(
    branches: list[np.ndarray], p: int, *, dad: bool = False
) -> np.ndarray:
    """Update-stage cost per branch from an existing decomposition.

    A branch is one subtree of the virtual root; replaying it costs ``p``
    additions per tree edge it contains (plus the DAD scaling term).
    Branch roots themselves carry no update work.  Taking the branches as
    input (rather than the tree) lets callers reuse the decomposition a
    :class:`~repro.runtime.plan.KernelPlan` already cached.
    """
    if p < 0:
        raise ValueError(f"p must be non-negative, got {p}")
    per_edge = p * (3 if dad else 1)
    return np.asarray(
        [per_edge * max(len(b) - 1, 0) for b in branches], dtype=np.float64
    )


def branch_costs(tree: CompressionTree, p: int, *, dad: bool = False) -> np.ndarray:
    """Update-stage cost of each branch of ``tree``, in scalar operations."""
    return branch_costs_from_branches(tree.branches(), p, dad=dad)


def update_stage_schedule(
    tree: CompressionTree, p: int, threads: int, *, dad: bool = False
) -> ScheduleResult:
    """Simulate the paper's branch-parallel update stage for a tree."""
    return simulate_dynamic_schedule(branch_costs(tree, p, dad=dad), threads)


def plan_update_schedule(plan, p: int, threads: int) -> ScheduleResult:
    """Simulate the update stage of a built :class:`KernelPlan`.

    Reuses the plan's cached branch decomposition and its row-scaling
    flag, so simulating many (p, threads) points costs no tree walks.
    """
    costs = branch_costs_from_branches(plan.branches, p, dad=plan.row_scaled)
    return simulate_dynamic_schedule(costs, threads)
