"""Cache-aware column-blocked SpMM (Section V-B's SIMD/locality concerns).

When the dense operand ``B`` is wide (the paper uses 500 columns), one
row of ``B`` spans 2 KiB and the gather working set of a sparse row
easily exceeds L1.  Splitting ``B`` into column panels bounds the panel
working set so gathered rows stay cache-resident across the sparse
matrix's column reuse — the standard tiling MKL applies internally.

Provided for both the plain CSR kernel (:func:`spmm_blocked`) and the CBM
kernel (:func:`cbm_matmul_blocked`, which also blocks the update stage so
each panel of the result is finished while still warm).  Results are
bitwise-identical per panel to the unblocked kernels; the ablation
benchmark measures whether blocking pays at this problem size.

This module also owns the **degree-aware row partitioner**
(:func:`partition_rows`) used by sharded multi-process execution: the
same load-balance idea GPU sparse kernels apply by sorting rows by nnz
before assigning them to concurrent streams, here applied to contiguous
row blocks so each shard stays a valid CSR row-slice.
"""

from __future__ import annotations

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import Engine, spmm
from repro.utils.validation import check_dense, check_positive

DEFAULT_PANEL = 128


def panel_bounds(total: int, panel: int) -> list[tuple[int, int]]:
    """Column ranges [(lo, hi), ...] covering ``total`` in ``panel`` chunks."""
    check_positive(panel, "panel")
    return [(lo, min(lo + panel, total)) for lo in range(0, total, panel)]


# Per-row base cost added to the nnz weight when partitioning.  Gives
# isolated (zero-degree) rows nonzero weight so they spread across shards
# instead of all piling into whichever shard the cost walk reaches last,
# and models the fixed per-row overhead (indptr walk, output-row touch)
# of the sparse kernels.
ROW_BASE_COST = 1.0

# Documented balance bound for :func:`partition_rows`: with contiguous
# blocks over a greedy cumulative-cost walk, no shard exceeds the ideal
# share by more than one row's cost.  The property tests assert exactly
# max(shard_cost) <= total/num_shards + max(row_cost).
BALANCE_SLACK_ROWS = 1


def partition_rows(row_cost, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, degree-aware row blocks ``[(lo, hi), ...]`` covering ``n`` rows.

    ``row_cost`` is a per-row weight vector (typically ``a.row_nnz()``);
    a :data:`ROW_BASE_COST` is added to every row so zero-degree rows
    still carry weight.  The greedy cumulative walk closes a shard once
    it reaches the ideal share ``total / num_shards``, so each shard's
    cost is at most the ideal share plus one row — the
    :data:`BALANCE_SLACK_ROWS` bound the schedule property tests pin.

    Always returns exactly ``num_shards`` bounds.  Edge cases are valid,
    never errors: ``n < num_shards`` yields empty ``(i, i)`` shards,
    a single heavy row yields a single-row block, and ``n == 0`` yields
    all-empty shards.

    Implementation: cut the prefix-sum of costs at the ideal boundaries
    ``s * total / num_shards``.  Each cut overshoots its boundary by at
    most the cost of the row straddling it, so every shard's cost is
    bounded by ``total/num_shards + max(row_cost)`` — unlike a greedy
    walk with per-shard re-planning, the slack does not compound.
    """
    check_positive(num_shards, "num_shards")
    cost = np.asarray(row_cost, dtype=np.float64).reshape(-1) + ROW_BASE_COST
    n = cost.size
    if n == 0:
        return [(0, 0)] * num_shards
    prefix = np.concatenate(([0.0], np.cumsum(cost)))
    total = float(prefix[-1])
    targets = total * np.arange(1, num_shards, dtype=np.float64) / num_shards
    # hi for shard s = first row index whose prefix sum reaches target s.
    cuts = np.searchsorted(prefix[1:], targets, side="left") + 1
    edges = np.concatenate(([0], cuts, [n]))
    return [(int(edges[s]), int(edges[s + 1])) for s in range(num_shards)]


def coalesce_bounds(
    bounds: list[tuple[int, int]], *, min_rows: int = 1
) -> list[tuple[int, int]]:
    """Merge adjacent row blocks until every kept block has ``min_rows``.

    :func:`partition_rows` legitimately emits empty ``(i, i)`` blocks
    when there are fewer rows than shards; a format router cannot use
    those (an empty block has no format to choose and would audit as a
    zero-width span).  Folding a too-small block into its left neighbour
    preserves coverage and order; the last block absorbs any remainder.
    """
    check_positive(min_rows, "min_rows")
    merged: list[tuple[int, int]] = []
    for lo, hi in bounds:
        lo, hi = int(lo), int(hi)
        if hi < lo:
            raise ShapeError(f"invalid block ({lo}, {hi})")
        if merged:
            if merged[-1][1] != lo:
                raise ShapeError("bounds must be contiguous and ordered")
            if merged[-1][1] - merged[-1][0] < min_rows or hi - lo < min_rows:
                merged[-1] = (merged[-1][0], hi)
                continue
        merged.append((lo, hi))
    while len(merged) > 1 and merged[-1][1] - merged[-1][0] < min_rows:
        merged[-2] = (merged[-2][0], merged[-1][1])
        merged.pop()
    return merged


def spmm_blocked(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    panel: int = DEFAULT_PANEL,
    engine: Engine | None = None,
) -> np.ndarray:
    """CSR × dense with column panelling; equals :func:`repro.sparse.ops.spmm`."""
    b = check_dense(b, name="b", ndim=2)
    if a.shape[1] != b.shape[0]:
        raise ShapeError.mismatch("spmm_blocked", a.shape, b.shape)
    out = np.empty((a.shape[0], b.shape[1]), dtype=np.result_type(a.data, b))
    for lo, hi in panel_bounds(b.shape[1], panel):
        out[:, lo:hi] = spmm(a, np.ascontiguousarray(b[:, lo:hi]), engine=engine)
    return out


def cbm_matmul_blocked(
    cbm: CBMMatrix,
    b: np.ndarray,
    *,
    panel: int = DEFAULT_PANEL,
    engine: Engine | None = None,
) -> np.ndarray:
    """CBM SpMM with column panelling of both stages.

    Each panel runs the multiplication stage and its update stage before
    the next panel starts, so the partial-result rows being propagated
    down the compression tree are still cache-hot — the fusion the paper
    aims at with its row-update/scaling fusion, applied along the other
    axis.
    """
    b = check_dense(b, name="b", ndim=2)
    if cbm.shape[1] != b.shape[0]:
        raise ShapeError.mismatch("cbm_matmul_blocked", cbm.shape, b.shape)
    out = np.empty((cbm.shape[0], b.shape[1]), dtype=np.float32)
    for lo, hi in panel_bounds(b.shape[1], panel):
        out[:, lo:hi] = cbm.matmul(np.ascontiguousarray(b[:, lo:hi]), engine=engine)
    return out


def sweep_panel_sizes(
    kernel,
    b_width: int,
    *,
    panels: tuple[int, ...] = (32, 64, 128, 256, 512),
) -> list[tuple[int, float]]:
    """Time ``kernel(panel)`` across panel sizes; returns (panel, seconds).

    ``kernel`` is a callable taking the panel size; panels wider than the
    operand collapse to one unblocked call and are still reported (they
    serve as the baseline row of the ablation table).
    """
    from repro.utils.timing import measure

    results = []
    for panel in panels:
        eff = min(panel, b_width)
        t = measure(lambda: kernel(eff), max_repeats=10, min_total=0.1)
        results.append((panel, t.mean))
    return results
