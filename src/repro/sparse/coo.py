"""Coordinate-list (COO) sparse matrix.

COO is the assembly format: cheap to build incrementally, trivially
convertible to CSR/CSC.  All kernels in this library operate on CSR; COO
exists to collect triplets and to mirror how graph edge lists arrive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.utils.validation import ensure_array

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix


class COOMatrix:
    """Sparse matrix in coordinate format: parallel (row, col, value) arrays.

    Duplicate coordinates are allowed at construction and are summed by
    :meth:`sum_duplicates` (or implicitly by :meth:`tocsr`), matching the
    semantics of every mainstream sparse library.
    """

    __slots__ = ("rows", "cols", "data", "shape")

    def __init__(self, rows, cols, data, shape: tuple[int, int]):
        self.rows = ensure_array(rows, dtype=np.int64, name="rows").ravel()
        self.cols = ensure_array(cols, dtype=np.int64, name="cols").ravel()
        self.data = ensure_array(data, name="data").ravel()
        if not (len(self.rows) == len(self.cols) == len(self.data)):
            raise FormatError(
                f"COO triplet arrays must have equal length, got "
                f"{len(self.rows)}/{len(self.cols)}/{len(self.data)}"
            )
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid COO shape {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.check_format()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return len(self.data)

    def check_format(self) -> None:
        """Validate index ranges; raises :class:`FormatError` on violation."""
        n, m = self.shape
        if self.nnz == 0:
            return
        if self.rows.min(initial=0) < 0 or (self.nnz and self.rows.max() >= n):
            raise FormatError(f"COO row index out of range for {self.shape}")
        if self.cols.min(initial=0) < 0 or (self.nnz and self.cols.max() >= m):
            raise FormatError(f"COO col index out of range for {self.shape}")

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges,
        shape: tuple[int, int],
        *,
        symmetric: bool = False,
        dtype=np.float32,
    ) -> "COOMatrix":
        """Build a binary COO matrix from an (E, 2) edge array.

        With ``symmetric=True`` each edge (u, v) also stores (v, u), which is
        how undirected graphs become adjacency matrices.  Self-loops are kept
        once.  Duplicates are *not* removed here; convert to CSR (which sums
        them) and re-binarise if needed, or use
        :meth:`repro.graphs.adjacency.adjacency_from_edges` which handles
        deduplication.
        """
        e = ensure_array(edges, dtype=np.int64, name="edges")
        if e.ndim != 2 or e.shape[1] != 2:
            raise ShapeError(f"edges must be (E, 2), got {e.shape}")
        rows, cols = e[:, 0], e[:, 1]
        if symmetric:
            off = rows != cols
            rows = np.concatenate([rows, cols[off]])
            cols = np.concatenate([cols, e[:, 0][off]])
        data = np.ones(len(rows), dtype=dtype)
        return cls(rows, cols, data, shape)

    def sum_duplicates(self) -> "COOMatrix":
        """Return an equivalent COO with unique, lexicographically sorted coords."""
        if self.nnz == 0:
            return COOMatrix(self.rows, self.cols, self.data, self.shape)
        order = np.lexsort((self.cols, self.rows))
        r, c, d = self.rows[order], self.cols[order], self.data[order]
        # Boundaries where either coordinate changes start a new group.
        new_group = np.empty(len(r), dtype=bool)
        new_group[0] = True
        new_group[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        idx = np.flatnonzero(new_group)
        summed = np.add.reduceat(d, idx)
        return COOMatrix(r[idx], c[idx], summed.astype(d.dtype, copy=False), self.shape)

    # ------------------------------------------------------------------
    def tocsr(self) -> "CSRMatrix":
        """Convert to CSR, summing duplicate entries."""
        from repro.sparse.csr import CSRMatrix

        dedup = self.sum_duplicates()
        n = self.shape[0]
        counts = np.bincount(dedup.rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # sum_duplicates already sorted by (row, col): columns are in order.
        return CSRMatrix(indptr, dedup.cols, dedup.data, self.shape, check=False)

    def toarray(self) -> np.ndarray:
        """Materialise as a dense ndarray (test/debug helper)."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def transpose(self) -> "COOMatrix":
        return COOMatrix(self.cols, self.rows, self.data, (self.shape[1], self.shape[0]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.data.dtype})"
