"""Compressed Sparse Column (CSC) matrix.

CSC mirrors CSR with the roles of rows and columns swapped.  The library
uses it for transposes and for the column-major access pattern of the
training-stage kernels (``Aᵀ`` products).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.utils.validation import ensure_array

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix


class CSCMatrix:
    """Sparse matrix in CSC format: column pointers + row indices + values."""

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape: tuple[int, int], *, check: bool = True):
        self.indptr = ensure_array(indptr, dtype=np.int64, name="indptr").ravel()
        self.indices = ensure_array(indices, dtype=np.int64, name="indices").ravel()
        self.data = ensure_array(data, name="data").ravel()
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid CSC shape {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self.check_format()

    @property
    def nnz(self) -> int:
        return len(self.data)

    def check_format(self) -> None:
        n, m = self.shape
        if len(self.indptr) != m + 1:
            raise FormatError(f"indptr has length {len(self.indptr)}, expected {m + 1}")
        if len(self.indices) != len(self.data):
            raise FormatError("indices and data differ in length")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.nnz and (self.indices.min() < 0 or self.indices.max() >= n):
            raise FormatError(f"row index out of range for {self.shape}")

    def col(self, j: int) -> np.ndarray:
        """Row indices of column ``j`` (a view, do not mutate)."""
        return self.indices[self.indptr[j] : self.indptr[j + 1]]

    def col_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def tocsr(self) -> "CSRMatrix":
        from repro.sparse.csr import CSRMatrix

        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), self.col_nnz())
        order = np.lexsort((cols, self.indices))
        rows, cols2, data = self.indices[order], cols[order], self.data[order]
        n = self.shape[0]
        counts = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, cols2, data, self.shape, check=False)

    def toarray(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        cols = np.repeat(np.arange(self.shape[1]), self.col_nnz())
        out[self.indices, cols] = self.data
        return out

    def transpose(self) -> "CSCMatrix":
        """Transpose by reinterpreting the CSR form of the flipped matrix."""
        csr = self.tocsr()
        return CSCMatrix(
            csr.indptr, csr.indices, csr.data, (self.shape[1], self.shape[0]), check=False
        )

    def memory_bytes(self, *, value_bytes: int = 4, index_bytes: int = 4) -> int:
        m = self.shape[1]
        return value_bytes * self.nnz + index_bytes * self.nnz + index_bytes * (m + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.data.dtype})"
