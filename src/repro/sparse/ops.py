"""Sparse-dense multiplication kernels and BLAS-style helpers.

Two interchangeable engines drive every kernel:

``Engine.REFERENCE``
    Pure NumPy, written for clarity: one vectorised pass per row.  This is
    the executable specification used by the test suite to validate the
    fast path.

``Engine.SCIPY``
    Delegates to SciPy's compiled CSR kernels.  This plays the role Intel
    MKL plays in the paper: a state-of-the-art compiled sparse backend
    shared by the CSR baseline *and* the CBM multiplication stage, so the
    CBM-vs-CSR comparison measures the format, not the backend.

The default engine is SciPy; :func:`set_default_engine` switches globally
(used by ablation benchmarks).
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_dense


class Engine(enum.Enum):
    """Kernel backend selector."""

    REFERENCE = "reference"
    SCIPY = "scipy"


_default_engine = Engine.SCIPY


def get_default_engine() -> Engine:
    return _default_engine


def set_default_engine(engine: Union[Engine, str]) -> Engine:
    """Set the process-wide default engine; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = Engine(engine)
    return previous


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------

def _as_scipy(a: CSRMatrix) -> sp.csr_matrix:
    """Zero-copy view of a :class:`CSRMatrix` as a SciPy csr_matrix."""
    return sp.csr_matrix((a.data, a.indices, a.indptr), shape=a.shape)


def _spmm_reference(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Row-at-a-time CSR × dense: C[i, :] = sum_j a[i, j] * b[j, :]."""
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.result_type(a.data, b))
    indptr, indices, data = a.indptr, a.indices, a.data
    for i in range(a.shape[0]):
        lo, hi = indptr[i], indptr[i + 1]
        if lo == hi:
            continue
        out[i] = data[lo:hi] @ b[indices[lo:hi]]
    return out


def _spmv_reference(a: CSRMatrix, v: np.ndarray) -> np.ndarray:
    out = np.zeros(a.shape[0], dtype=np.result_type(a.data, v))
    indptr, indices, data = a.indptr, a.indices, a.data
    for i in range(a.shape[0]):
        lo, hi = indptr[i], indptr[i + 1]
        if lo != hi:
            out[i] = data[lo:hi] @ v[indices[lo:hi]]
    return out


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------

def spmm(a: CSRMatrix, b: np.ndarray, *, engine: Engine | None = None) -> np.ndarray:
    """Sparse-dense matrix product ``a @ b``.

    ``a`` is CSR, ``b`` is a dense 2-D array; returns a dense array of
    shape ``(a.shape[0], b.shape[1])``.
    """
    b = check_dense(b, name="b", ndim=2)
    if a.shape[1] != b.shape[0]:
        raise ShapeError.mismatch("spmm", a.shape, b.shape)
    eng = engine or _default_engine
    if eng is Engine.SCIPY:
        return np.asarray(_as_scipy(a) @ b)
    return _spmm_reference(a, b)


def spmv(a: CSRMatrix, v: np.ndarray, *, engine: Engine | None = None) -> np.ndarray:
    """Sparse matrix-vector product ``a @ v`` for a dense 1-D ``v``."""
    v = check_dense(v, name="v", ndim=1)
    if a.shape[1] != v.shape[0]:
        raise ShapeError.mismatch("spmv", a.shape, v.shape)
    eng = engine or _default_engine
    if eng is Engine.SCIPY:
        return np.asarray(_as_scipy(a) @ v)
    return _spmv_reference(a, v)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """In-place BLAS-1 update ``y += alpha * x``; returns ``y``.

    The CBM update stage is a sequence of these per compression-tree edge
    (Section V-A of the paper); the level-vectorised variant used by
    :mod:`repro.core.cbm` batches them, but this scalar form remains the
    reference and is exercised by the per-edge ablation.
    """
    x = np.asarray(x)
    if x.shape != y.shape:
        raise ShapeError.mismatch("axpy", x.shape, y.shape)
    if alpha == 1.0:
        y += x
    else:
        y += alpha * x
    return y


def sparse_sparse_matmul(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sparse × sparse product, used to form ``A @ Aᵀ`` during compression.

    Delegates to SciPy's compiled SpGEMM; the result is returned in our
    CSR container with sorted, deduplicated rows.
    """
    if a.shape[1] != b.shape[0]:
        raise ShapeError.mismatch("sparse_sparse_matmul", a.shape, b.shape)
    c = (_as_scipy(a) @ _as_scipy(b)).tocsr()
    c.sort_indices()
    c.sum_duplicates()
    return CSRMatrix(
        c.indptr.astype(np.int64),
        c.indices.astype(np.int64),
        c.data,
        c.shape,
        check=False,
    )
