"""Compressed Sparse Row (CSR) matrix.

This is the baseline format of the paper: the graph adjacency matrix is
held in CSR and multiplied with dense matrices by MKL.  Here the container
is implemented from scratch on NumPy arrays; the multiplication kernels
live in :mod:`repro.sparse.ops` so the same container can be driven by
either the reference or the SciPy engine.

Memory accounting follows the paper's convention (single-precision values,
32-bit indices): ``S_CSR = 4*nnz (values) + 4*nnz (column indices) +
4*(n+1) (row pointers)`` which reproduces the ``S_CSR`` column of Table I
exactly for all eight datasets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FormatError, NotBinaryError, ShapeError
from repro.utils.validation import ensure_array

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csc import CSCMatrix


class CSRMatrix:
    """Sparse matrix in CSR format: ``indptr``, ``indices``, ``data``.

    Rows are stored contiguously; row ``i`` occupies the slice
    ``indices[indptr[i]:indptr[i+1]]``.  Column indices within a row are
    kept sorted and unique (enforced by :meth:`check_format`), which the
    delta-extraction code in :mod:`repro.core.deltas` relies on for its
    merge-based set operations.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape: tuple[int, int], *, check: bool = True):
        self.indptr = ensure_array(indptr, dtype=np.int64, name="indptr").ravel()
        self.indices = ensure_array(indices, dtype=np.int64, name="indices").ravel()
        self.data = ensure_array(data, name="data").ravel()
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid CSR shape {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self.check_format()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.data)

    def check_format(self) -> None:
        """Validate all CSR structural invariants.

        Checks pointer monotonicity and bounds, index ranges, array length
        agreement, and per-row sorted-unique column indices.
        """
        n, m = self.shape
        if len(self.indptr) != n + 1:
            raise FormatError(f"indptr has length {len(self.indptr)}, expected {n + 1}")
        if len(self.indices) != len(self.data):
            raise FormatError(
                f"indices ({len(self.indices)}) and data ({len(self.data)}) differ in length"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= m:
                raise FormatError(f"column index out of range for {self.shape}")
            # Sorted-unique within each row: strictly increasing except at
            # row boundaries.
            diffs = np.diff(self.indices)
            boundary = np.zeros(len(diffs), dtype=bool)
            inner = self.indptr[1:-1]
            boundary[inner[(inner > 0) & (inner < len(self.indices))] - 1] = True
            if np.any((diffs <= 0) & ~boundary):
                raise FormatError("column indices must be sorted and unique within rows")

    # ------------------------------------------------------------------
    def row(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` (a view, do not mutate)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_values(self, i: int) -> np.ndarray:
        return self.data[self.indptr[i] : self.indptr[i + 1]]

    def row_nnz(self) -> np.ndarray:
        """Vector of per-row non-zero counts."""
        return np.diff(self.indptr)

    def is_binary(self) -> bool:
        return bool(np.all(self.data == 1))

    def require_binary(self) -> None:
        if not self.is_binary():
            raise NotBinaryError("matrix has values outside {0, 1}")

    # ------------------------------------------------------------------
    def tocoo(self) -> "COOMatrix":
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_nnz())
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def tocsc(self) -> "CSCMatrix":
        from repro.sparse.csc import CSCMatrix

        coo = self.tocoo()
        order = np.lexsort((coo.rows, coo.cols))
        rows, cols, data = coo.rows[order], coo.cols[order], coo.data[order]
        m = self.shape[1]
        counts = np.bincount(cols, minlength=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSCMatrix(indptr, rows, data, self.shape, check=False)

    def toarray(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    def transpose(self) -> "CSRMatrix":
        """Transpose via CSC reinterpretation (O(nnz))."""
        csc = self.tocsc()
        return CSRMatrix(
            csc.indptr, csc.indices, csc.data, (self.shape[1], self.shape[0]), check=False
        )

    def extract_rows(self, rows) -> "CSRMatrix":
        """Row submatrix (full column width) in the given row order."""
        rows = ensure_array(rows, dtype=np.int64, name="rows").ravel()
        if len(rows) and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ShapeError(f"row indices out of range for {self.shape}")
        counts = self.row_nnz()[rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        chunks_i = [self.row(int(r)) for r in rows]
        chunks_v = [self.row_values(int(r)) for r in rows]
        indices = np.concatenate(chunks_i) if chunks_i else np.empty(0, dtype=np.int64)
        data = (
            np.concatenate(chunks_v)
            if chunks_v
            else np.empty(0, dtype=self.data.dtype)
        )
        return CSRMatrix(indptr, indices, data, (len(rows), self.shape[1]), check=False)

    def extract_row_range(self, lo: int, hi: int) -> "CSRMatrix":
        """Contiguous row slice ``[lo, hi)`` without per-row gathers.

        Equivalent to ``extract_rows(range(lo, hi))`` but O(block nnz)
        with three array slices — the hybrid format router slices every
        block of the adjacency this way at plan time.
        """
        lo, hi = int(lo), int(hi)
        if lo < 0 or hi < lo or hi > self.shape[0]:
            raise ShapeError(f"row range [{lo}, {hi}) out of range for {self.shape}")
        start, stop = int(self.indptr[lo]), int(self.indptr[hi])
        indptr = (self.indptr[lo:hi + 1] - start).astype(np.int64)
        return CSRMatrix(
            indptr,
            self.indices[start:stop],
            self.data[start:stop],
            (hi - lo, self.shape[1]),
            check=False,
        )

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape, check=False
        )

    # ------------------------------------------------------------------
    def scale_columns(self, d: np.ndarray) -> "CSRMatrix":
        """Return ``self @ diag(d)`` — every stored (i, j) scaled by ``d[j]``."""
        d = ensure_array(d, name="d").ravel()
        if len(d) != self.shape[1]:
            raise ShapeError.mismatch("scale_columns", self.shape, (len(d),))
        return CSRMatrix(
            self.indptr, self.indices, self.data * d[self.indices], self.shape, check=False
        )

    def scale_rows(self, d: np.ndarray) -> "CSRMatrix":
        """Return ``diag(d) @ self`` — every stored (i, j) scaled by ``d[i]``."""
        d = ensure_array(d, name="d").ravel()
        if len(d) != self.shape[0]:
            raise ShapeError.mismatch("scale_rows", (len(d),), self.shape)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        return CSRMatrix(self.indptr, self.indices, self.data * d[rows], self.shape, check=False)

    # ------------------------------------------------------------------
    def memory_bytes(self, *, value_bytes: int = 4, index_bytes: int = 4) -> int:
        """Storage footprint under the paper's accounting (see module docstring)."""
        n = self.shape[0]
        return value_bytes * self.nnz + index_bytes * self.nnz + index_bytes * (n + 1)

    def __matmul__(self, other):
        from repro.sparse.ops import spmm, spmv

        other = np.asarray(other)
        if other.ndim == 1:
            return spmv(self, other)
        return spmm(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.data.dtype})"
