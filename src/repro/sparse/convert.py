"""Conversions between repro containers, SciPy sparse, and dense arrays."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import ensure_array


def from_dense(a, *, dtype=np.float32) -> CSRMatrix:
    """Build a :class:`CSRMatrix` holding the non-zero pattern of dense ``a``."""
    arr = ensure_array(a, name="a")
    if arr.ndim != 2:
        raise ShapeError(f"expected a 2-D array, got {arr.ndim}-D")
    rows, cols = np.nonzero(arr)
    vals = arr[rows, cols].astype(dtype)
    return COOMatrix(rows, cols, vals, arr.shape).tocsr()


def from_scipy(a: sp.spmatrix) -> CSRMatrix:
    """Convert any SciPy sparse matrix to our CSR container."""
    csr = sp.csr_matrix(a)
    csr.sort_indices()
    csr.sum_duplicates()
    return CSRMatrix(
        csr.indptr.astype(np.int64),
        csr.indices.astype(np.int64),
        csr.data,
        csr.shape,
        check=False,
    )


def to_scipy_csr(a: CSRMatrix) -> sp.csr_matrix:
    """View a :class:`CSRMatrix` as a SciPy csr_matrix.

    SciPy may downcast the 64-bit index arrays (copying them); the value
    array is reused when possible.
    """
    return sp.csr_matrix((a.data, a.indices, a.indptr), shape=a.shape)
