"""Sparse-matrix substrate.

The paper's kernels are built on Intel MKL's CSR sparse-dense multiplication
and ``axpy``.  This package is the stand-in: from-scratch COO/CSR/CSC
containers (:mod:`repro.sparse.coo`, :mod:`repro.sparse.csr`,
:mod:`repro.sparse.csc`) plus multiplication kernels
(:mod:`repro.sparse.ops`) that run either on a pure-NumPy reference engine
or on SciPy's compiled sparse kernels — the latter plays the role MKL plays
in the paper, giving both the CSR baseline and the CBM kernels the same
high-performance backend.
"""

from repro.sparse.convert import (
    from_dense,
    from_scipy,
    to_scipy_csr,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import load_matrix_market, save_matrix_market
from repro.sparse.ops import (
    Engine,
    axpy,
    get_default_engine,
    set_default_engine,
    spmm,
    spmv,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "Engine",
    "axpy",
    "spmm",
    "spmv",
    "get_default_engine",
    "set_default_engine",
    "from_dense",
    "from_scipy",
    "to_scipy_csr",
    "load_matrix_market",
    "save_matrix_market",
]
