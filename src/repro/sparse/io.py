"""Matrix Market I/O for sparse matrices.

A minimal, dependency-free reader/writer for the ``coordinate`` flavour of
the MatrixMarket exchange format — enough to persist adjacency matrices
and to import graphs downloaded elsewhere.  Supports the ``general`` and
``symmetric`` symmetry classes and the ``real``, ``integer``, and
``pattern`` fields.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import FormatError
from repro.recovery.atomic import atomic_write
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

PathLike = Union[str, os.PathLike]

_HEADER = "%%MatrixMarket matrix coordinate"
_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric"}


def save_matrix_market(path: PathLike, a: CSRMatrix, *, field: str = "real") -> None:
    """Write ``a`` to ``path`` in MatrixMarket coordinate format.

    ``field='pattern'`` stores only the sparsity structure (the right
    choice for binary adjacency matrices: one-third the file size).
    The file is replaced atomically — a crash mid-write can no longer
    leave a half-written file that later parses as a truncated graph.
    """
    if field not in _FIELDS:
        raise ValueError(f"unsupported field {field!r}; choose from {sorted(_FIELDS)}")
    coo = a.tocoo()
    with atomic_write(path, mode="w", encoding="ascii") as fh:
        fh.write(f"{_HEADER} {field} general\n")
        fh.write(f"{a.shape[0]} {a.shape[1]} {coo.nnz}\n")
        if field == "pattern":
            for r, c in zip(coo.rows, coo.cols, strict=True):
                fh.write(f"{r + 1} {c + 1}\n")
        elif field == "integer":
            for r, c, v in zip(coo.rows, coo.cols, coo.data, strict=True):
                fh.write(f"{r + 1} {c + 1} {int(v)}\n")
        else:
            for r, c, v in zip(coo.rows, coo.cols, coo.data, strict=True):
                fh.write(f"{r + 1} {c + 1} {float(v):.9g}\n")


def load_matrix_market(path: PathLike, *, dtype=np.float32) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CSRMatrix`.

    Symmetric files are expanded to full storage (both triangles), which
    matches how the paper's undirected graphs are represented in CSR.
    """
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket" or header[2] != "coordinate":
            raise FormatError(f"not a MatrixMarket coordinate file: {path}")
        field, symmetry = header[3], header[4]
        if field not in _FIELDS:
            raise FormatError(f"unsupported MatrixMarket field {field!r}")
        if symmetry not in _SYMMETRIES:
            raise FormatError(f"unsupported MatrixMarket symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            n, m, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise FormatError(f"malformed size line in {path}: {line!r}") from exc
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=dtype)
        for k in range(nnz):
            parts = fh.readline().split()
            if len(parts) < 2:
                raise FormatError(f"truncated MatrixMarket file {path} at entry {k}")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            if field != "pattern" and len(parts) >= 3:
                vals[k] = dtype(float(parts[2]))
    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols2 = np.concatenate([cols, rows[: nnz][off]])
        vals = np.concatenate([vals, vals[off]])
        cols = cols2
    return COOMatrix(rows, cols, vals, (n, m)).tocsr()
