"""Single Tree Adjacency Forest (STAF) — related-work comparator.

STAF (Nishino et al., SDM 2014) is the closest prior computation-friendly
binary-matrix compression scheme the paper compares against conceptually
(Section VII): reversed adjacency lists are inserted into a trie so rows
sharing *suffixes* of their sorted column lists share trie paths, and the
matrix-dense product is computed by accumulating partial sums down the
trie — at most one scalar addition per trie node per output column.

CBM generalises this by exploiting similarity across *entire* rows (not
just common suffixes); having both formats in one repo lets the
benchmarks quantify that difference on the same graphs.
"""

from repro.staf.trie import STAFMatrix, build_staf

__all__ = ["STAFMatrix", "build_staf"]
