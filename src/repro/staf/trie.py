"""STAF trie construction and multiplication kernels.

Construction: each row's sorted column list is reversed (largest column
first) and inserted into a trie rooted at a virtual node.  Two rows whose
sorted lists end identically walk the same trie prefix, so the shared
suffix is stored once.  Each trie node carries one column index; a row
terminates at the node completing its list.

Multiplication (``A @ B`` for binary A, dense B): every trie node's
partial sum is its parent's partial sum plus the B-row of its column —
one vectorised row addition per node — and row x of the result is the
partial sum at x's terminal node.  Operation count = trie nodes × p,
which Nishino et al. bound by ``nnz(A) · p`` (Property analogous to the
paper's Property 2).

The kernel is level-vectorised exactly like the CBM update stage: nodes
are grouped by trie depth, parents always live at the previous depth.
Note the inherent memory cost this exposes: the partial-sum buffer is
``num_nodes × p`` — proportional to the *compressed* size times the dense
width — whereas CBM's update stage works in place on the output
(Property 3 of the paper).  On wide operands that buffer dominates STAF's
wall-clock despite its competitive operation count, which is exactly the
"additional memory during matrix multiplication" drawback the paper lists
for prior formats in Section I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotBinaryError, ShapeError
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_dense

_ROOT = -1


@dataclass
class STAFMatrix:
    """A binary matrix stored as a Single Tree Adjacency Forest.

    Attributes
    ----------
    parent / column:
        Per-trie-node arrays; ``parent[k] == -1`` means the node hangs off
        the virtual root, ``column[k]`` is the matrix column the node adds.
    terminal:
        ``terminal[x]`` is the trie node completing row x (−1 for an empty
        row).
    shape / source_nnz:
        Original matrix metadata for accounting.
    """

    parent: np.ndarray
    column: np.ndarray
    terminal: np.ndarray
    shape: tuple[int, int]
    source_nnz: int

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def n(self) -> int:
        return self.shape[0]

    # ------------------------------------------------------------------
    def _levels(self) -> list[np.ndarray]:
        """Trie nodes grouped by depth (root children first)."""
        depth = np.zeros(self.num_nodes, dtype=np.int64)
        # Nodes are created parent-before-child, so one forward pass works.
        has_parent = self.parent >= 0
        depth[has_parent] = -1
        order = np.arange(self.num_nodes)
        for k in order[has_parent]:
            depth[k] = depth[self.parent[k]] + 1
        maxd = int(depth.max(initial=0))
        srt = np.argsort(depth, kind="stable")
        ds = depth[srt]
        return [
            srt[np.searchsorted(ds, k, "left") : np.searchsorted(ds, k, "right")]
            for k in range(maxd + 1)
        ]

    def matmul(self, b: np.ndarray) -> np.ndarray:
        """Dense product ``A @ b`` via partial-sum accumulation."""
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("STAF matmul", self.shape, b.shape)
        p = b.shape[1]
        partial = np.zeros((self.num_nodes, p), dtype=b.dtype)
        parent, column = self.parent, self.column
        for lv in self._levels():
            roots = lv[parent[lv] == _ROOT]
            inner = lv[parent[lv] != _ROOT]
            if len(roots):
                partial[roots] = b[column[roots]]
            if len(inner):
                partial[inner] = partial[parent[inner]] + b[column[inner]]
        out = np.zeros((self.n, p), dtype=b.dtype)
        live = self.terminal >= 0
        out[live] = partial[self.terminal[live]]
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = check_dense(v, name="v", ndim=1)
        return self.matmul(v[:, None])[:, 0]

    def __matmul__(self, b):
        b = np.asarray(b)
        if b.ndim == 1:
            return self.matvec(b)
        return self.matmul(b)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Trie storage: parent + column per node (two 32-bit ints), plus
        one terminal pointer per row — the convention mirroring the
        paper's CSR/CBM accounting."""
        return 8 * self.num_nodes + 4 * self.n

    def compression_ratio(self) -> float:
        """S_CSR / S_STAF under the paper's CSR accounting."""
        s_csr = 8 * self.source_nnz + 4 * (self.n + 1)
        return s_csr / self.memory_bytes()

    def scalar_ops(self, p: int) -> int:
        """Scalar additions of one matmul: one per trie node per column."""
        if p < 0:
            raise ValueError(f"p must be non-negative, got {p}")
        return self.num_nodes * p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"STAFMatrix(shape={self.shape}, nodes={self.num_nodes}, "
            f"nnz={self.source_nnz})"
        )


def build_staf(a: CSRMatrix) -> STAFMatrix:
    """Compress binary CSR matrix ``a`` into a STAF trie.

    Rows are inserted largest-column-first so shared *suffixes* of the
    sorted adjacency lists collapse into shared trie paths.  Construction
    is O(nnz) dictionary operations.
    """
    if not a.is_binary():
        raise NotBinaryError("STAF requires a binary matrix")
    n = a.shape[0]
    parent: list[int] = []
    column: list[int] = []
    children: dict[tuple[int, int], int] = {}
    terminal = np.full(n, -1, dtype=np.int64)
    for x in range(n):
        row = a.row(x)
        node = _ROOT
        for c in row[::-1]:
            key = (node, int(c))
            nxt = children.get(key)
            if nxt is None:
                nxt = len(parent)
                parent.append(node)
                column.append(int(c))
                children[key] = nxt
            node = nxt
        terminal[x] = node
    return STAFMatrix(
        parent=np.asarray(parent, dtype=np.int64),
        column=np.asarray(column, dtype=np.int64),
        terminal=terminal,
        shape=a.shape,
        source_nnz=a.nnz,
    )
