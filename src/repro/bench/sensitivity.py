"""Controlled sensitivity sweeps: *which* graph structure drives CBM.

The paper's evaluation uses fixed real-world graphs, so structure and
family are confounded.  These sweeps vary one generator knob at a time on
synthetic graphs, isolating the mechanisms behind Tables II/V:

* :func:`sweep_closure` — triadic closure (clustering) at fixed degree;
* :func:`sweep_degree` — average degree at fixed clustering regime;
* :func:`sweep_duplication` — fraction of exactly duplicated rows, the
  pure CBM best case (each duplicate costs zero deltas);
* :func:`sweep_noise` — per-row bit flips applied to a clique graph, the
  smooth path from "identical rows" to "independent rows".

Each returns rows of (knob, measured structure, compression ratio), and
``benchmarks/bench_sensitivity.py`` renders them as tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import build_cbm
from repro.graphs.adjacency import adjacency_from_edges
from repro.graphs.generators import citation_graph, erdos_renyi_graph
from repro.graphs.stats import average_clustering_coefficient
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import as_rng


def _ratio(a: CSRMatrix) -> float:
    _, rep = build_cbm(a, alpha=0)
    return rep.compression_ratio


def sweep_closure(
    n: int = 1500,
    avg_degree: float = 10.0,
    closures: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8),
    *,
    seed: int = 0,
) -> list[dict]:
    """Compression ratio as triadic closure rises at fixed degree."""
    rows = []
    for closure in closures:
        a = citation_graph(n, avg_degree, closure=closure, seed=seed)
        rows.append(
            {
                "closure": closure,
                "clustering": average_clustering_coefficient(a),
                "avg_degree": a.nnz / n,
                "ratio": _ratio(a),
            }
        )
    return rows


def sweep_degree(
    n: int = 1200,
    degrees: tuple[float, ...] = (4.0, 8.0, 16.0, 32.0, 64.0),
    *,
    seed: int = 0,
) -> list[dict]:
    """Compression ratio vs average degree for an Erdős–Rényi graph.

    ER rows share neighbours only by chance, so this isolates the degree
    effect the paper observes on the citation graphs: low degree leaves
    nothing to compress regardless of family.
    """
    rows = []
    for deg in degrees:
        a = erdos_renyi_graph(n, deg, seed=seed)
        rows.append(
            {"avg_degree": a.nnz / n, "requested_degree": deg, "ratio": _ratio(a)}
        )
    return rows


def blowup_graph(m: int, replication: int, base_degree: float, *, seed=None) -> CSRMatrix:
    """Blow-up graph G × K̄_r: every node of an ER graph becomes ``r``
    replicas, every edge becomes the complete bipartite join of the two
    replica groups.

    All ``r`` replicas of a node have *identical* adjacency rows — the
    pure CBM best case: one representative pays its row, the other r−1
    cost zero deltas, so the compression ratio approaches r.
    """
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    rng = as_rng(seed)
    base = erdos_renyi_graph(m, base_degree, seed=rng)
    coo = base.tocoo()
    r = replication
    ks, ls = np.meshgrid(np.arange(r), np.arange(r))
    ks, ls = ks.ravel(), ls.ravel()
    rows = (coo.rows[:, None] * r + ks[None, :]).ravel()
    cols = (coo.cols[:, None] * r + ls[None, :]).ravel()
    edges = np.column_stack([rows, cols])
    return adjacency_from_edges(edges, m * r)


def sweep_duplication(
    n: int = 1200,
    base_degree: float = 12.0,
    replications: tuple[int, ...] = (1, 2, 4, 8),
    *,
    seed: int = 0,
) -> list[dict]:
    """Compression ratio vs row-replication factor (CBM's best case).

    The node budget ``n`` is held fixed: replication r uses an n/r-node
    base graph blown up r times, so nnz comparisons stay meaningful."""
    rows = []
    for r in replications:
        a = blowup_graph(max(n // r, 2), r, base_degree, seed=seed)
        rows.append({"replication": r, "nnz": a.nnz, "ratio": _ratio(a)})
    return rows


def noisy_clique_graph(
    n: int, clique_size: int, flips_per_row: int, *, seed=None
) -> CSRMatrix:
    """Disjoint cliques with ``flips_per_row`` random bit flips per row."""
    rng = as_rng(seed)
    blocks = n // clique_size
    n = blocks * clique_size
    rows_idx = np.arange(n, dtype=np.int64)
    block = rows_idx // clique_size
    chunks = []
    for b in range(blocks):
        members = rows_idx[block == b]
        iu, ju = np.triu_indices(len(members), k=1)
        chunks.append(np.column_stack([members[iu], members[ju]]))
    edges = np.concatenate(chunks)
    m = n * flips_per_row // 2
    if m:
        noise = rng.integers(0, n, size=(m, 2), dtype=np.int64)
        edges = np.concatenate([edges, noise])
    return adjacency_from_edges(edges, n)


def sweep_noise(
    n: int = 1200,
    clique_size: int = 30,
    flips: tuple[int, ...] = (0, 1, 2, 4, 8, 16),
    *,
    seed: int = 0,
) -> list[dict]:
    """Compression ratio as noise degrades clique structure."""
    rows = []
    for f in flips:
        a = noisy_clique_graph(n, clique_size, f, seed=seed)
        rows.append(
            {
                "flips_per_row": f,
                "clustering": average_clustering_coefficient(a),
                "ratio": _ratio(a),
            }
        )
    return rows
