"""Benchmark harness: timing protocol, experiment runners, table rendering.

One module per paper exhibit lives in :mod:`repro.bench.experiments`; the
scripts under ``benchmarks/`` are thin wrappers that run them under
pytest-benchmark and print paper-vs-measured tables.
"""

from repro.bench.experiments import (
    run_figure2,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.bench.harness import BenchResult, compare, time_kernel

__all__ = [
    "BenchResult",
    "compare",
    "time_kernel",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure2",
]
