"""Timing protocol for kernel comparisons.

The paper times each kernel 250 times and reports mean ± std.  On this
container the same protocol is approximated with the adaptive
:func:`repro.utils.timing.measure`; alongside wall-clock, every comparison
carries deterministic scalar-operation counts, which are the quantity the
paper's Properties 1–2 actually bound and which do not suffer from
single-core noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.timing import MeasuredTime, measure


@dataclass(frozen=True)
class BenchResult:
    """One timed kernel: wall-clock distribution plus op count."""

    name: str
    time: MeasuredTime
    scalar_ops: int | None = None

    @property
    def mean_s(self) -> float:
        return self.time.mean

    @property
    def std_s(self) -> float:
        return self.time.std


def time_kernel(
    name: str,
    fn: Callable[[], object],
    *,
    scalar_ops: int | None = None,
    repeats: int = 10,
    min_total: float = 0.25,
) -> BenchResult:
    """Measure ``fn`` with warmup; returns the sample distribution."""
    t = measure(fn, warmup=1, min_repeats=3, max_repeats=repeats, min_total=min_total)
    return BenchResult(name=name, time=t, scalar_ops=scalar_ops)


@dataclass(frozen=True)
class Comparison:
    """Baseline-vs-candidate outcome (the paper's speedup metric)."""

    baseline: BenchResult
    candidate: BenchResult

    @property
    def speedup(self) -> float:
        """``T_baseline / T_candidate`` — >1 means the candidate wins."""
        return self.baseline.mean_s / self.candidate.mean_s

    @property
    def ops_ratio(self) -> float | None:
        """Scalar-operation ratio, when both sides carry counts."""
        if self.baseline.scalar_ops is None or self.candidate.scalar_ops is None:
            return None
        if self.candidate.scalar_ops == 0:
            return float("inf")
        return self.baseline.scalar_ops / self.candidate.scalar_ops


def compare(
    baseline_name: str,
    baseline_fn: Callable[[], object],
    candidate_name: str,
    candidate_fn: Callable[[], object],
    *,
    baseline_ops: int | None = None,
    candidate_ops: int | None = None,
    repeats: int = 10,
    min_total: float = 0.25,
) -> Comparison:
    """Time two kernels back-to-back under the same protocol."""
    b = time_kernel(
        baseline_name, baseline_fn, scalar_ops=baseline_ops, repeats=repeats, min_total=min_total
    )
    c = time_kernel(
        candidate_name, candidate_fn, scalar_ops=candidate_ops, repeats=repeats, min_total=min_total
    )
    return Comparison(baseline=b, candidate=c)
