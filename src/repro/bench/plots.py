"""ASCII line charts for terminal-friendly benchmark output.

The paper's Figure 2 is eight speedup-vs-alpha panels; this renderer
reproduces their shape in plain text so EXPERIMENTS.md and CLI output can
show the curves, not just the numbers, without any plotting dependency.

The canvas maps series onto a character grid; multiple series get
distinct glyphs and a legend.  X positions use the *index* of each sample
(the paper's alpha axis is categorical: 0, 1, 2, 4, 8, 16, 32).
"""

from __future__ import annotations

import math
from typing import Sequence


def _format_tick(v: float) -> str:
    if v == int(v) and abs(v) < 1000:
        return str(int(v))
    return f"{v:.2f}"


def ascii_chart(
    x_labels: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    height: int = 12,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more series over categorical x positions.

    ``series`` maps legend names to equal-length value sequences; the
    y-axis is scaled to the data (0 is included when all values are
    non-negative, so bar-like comparisons stay honest).
    """
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1 or lengths.pop() != len(x_labels):
        raise ValueError("all series must match the length of x_labels")
    if height < 3:
        raise ValueError(f"height must be >= 3, got {height}")
    glyphs = "*o+x#@%&"
    values = [v for vs in series.values() for v in vs if not math.isnan(v)]
    if not values:
        raise ValueError("series contain no finite values")
    vmax = max(values)
    vmin = min(values)
    if vmin > 0:
        vmin = 0.0
    if vmax == vmin:
        vmax = vmin + 1.0

    width = len(x_labels)
    col_width = max(max(len(str(lbl)) for lbl in x_labels) + 1, 4)
    grid = [[" "] * (width * col_width) for _ in range(height)]

    def row_of(v: float) -> int:
        frac = (v - vmin) / (vmax - vmin)
        return int(round((height - 1) * (1.0 - frac)))

    for si, (name, vals) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for xi, v in enumerate(vals):
            if math.isnan(v):
                continue
            grid[row_of(v)][xi * col_width + col_width // 2] = glyph

    y_ticks = [vmax, (vmax + vmin) / 2, vmin]
    tick_rows = {0: y_ticks[0], (height - 1) // 2: y_ticks[1], height - 1: y_ticks[2]}
    margin = max(len(_format_tick(t)) for t in y_ticks) + 1

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label}")
    for r in range(height):
        tick = _format_tick(tick_rows[r]) if r in tick_rows else ""
        lines.append(f"{tick.rjust(margin)}|{''.join(grid[r])}")
    axis = "-" * (width * col_width)
    lines.append(f"{' ' * margin}+{axis}")
    labels = "".join(str(lbl).center(col_width) for lbl in x_labels)
    lines.append(f"{' ' * margin} {labels}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * margin} legend: {legend}")
    return "\n".join(lines)


def figure2_panel(
    alphas: Sequence[int],
    seq_speedup: Sequence[float],
    par_speedup: Sequence[float],
    ratio: Sequence[float],
    *,
    graph: str,
) -> str:
    """One panel of the paper's Figure 2 as an ASCII chart."""
    return ascii_chart(
        list(alphas),
        {
            "seq speedup": list(seq_speedup),
            "par speedup (16c)": list(par_speedup),
            "compression ratio": list(ratio),
        },
        title=f"Figure 2 — {graph} (x: alpha)",
        height=12,
    )
