"""Experiment runners — one per table/figure of the paper's evaluation.

Every runner returns a list of row dicts (so tests can assert on the
numbers) and can render itself as a plain-text table shaped like the
paper's.  Columns come in pairs where applicable: the paper's reported
value next to this reproduction's measured value.

Measurement strategy (see DESIGN.md):

* wall-clock is measured for the *sequential* kernels on the real
  stand-in graphs (both sides run on the same compiled backend);
* 16-core numbers come from the calibrated machine model
  (:mod:`repro.parallel.simulate`) extrapolated to paper-scale graphs —
  this single-core container cannot run 16 threads;
* compression ratios and scalar-operation counts are exact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bench.harness import compare, time_kernel
from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix, Variant
from repro.core.opcount import csr_spmm_ops
from repro.gnn.adjacency import CBMAdjacency, CSRAdjacency
from repro.gnn.gcn import two_layer_gcn_inference
from repro.graphs.datasets import REGISTRY, load_dataset, paper_stats
from repro.graphs.laplacian import gcn_normalization, normalized_adjacency
from repro.graphs.stats import compute_stats
from repro.parallel.machine import XEON_GOLD_6130, MachineSpec
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm
from repro.utils.fmt import format_table
from repro.utils.rng import as_rng

ALL_DATASETS = tuple(REGISTRY)

# Best alpha per dataset from the paper's Table III (sequential, parallel).
PAPER_BEST_ALPHA: dict[str, tuple[int, int]] = {
    "Cora": (2, 4),
    "PubMed": (4, 16),
    "ca-AstroPh": (2, 8),
    "ca-HepPh": (4, 1),
    "COLLAB": (4, 16),
    "coPapersDBLP": (4, 32),
    "coPapersCiteseer": (4, 32),
    "ogbn-proteins": (8, 16),
}

# Paper Table III: (seq speedup, par speedup) for AX.
PAPER_AX_SPEEDUPS: dict[str, tuple[float, float]] = {
    "Cora": (1.02, 1.05),
    "PubMed": (1.00, 0.99),
    "ca-AstroPh": (1.41, 1.13),
    "ca-HepPh": (1.85, 1.46),
    "COLLAB": (3.96, 5.25),
    "coPapersDBLP": (2.51, 2.65),
    "coPapersCiteseer": (3.56, 4.88),
    "ogbn-proteins": (2.07, 1.77),
}

# Paper Table IV: (seq speedup, par speedup) for two-layer GCN inference.
PAPER_GCN_SPEEDUPS: dict[str, tuple[float, float]] = {
    "Cora": (1.00, 0.98),
    "PubMed": (0.99, 1.02),
    "ca-AstroPh": (1.13, 1.06),
    "ca-HepPh": (1.19, 1.11),
    "COLLAB": (1.56, 2.02),
    "coPapersDBLP": (1.47, 1.69),
    "coPapersCiteseer": (1.68, 2.48),
    "ogbn-proteins": (1.81, 1.56),
}


def _scales(name: str, a: CSRMatrix) -> tuple[float, float]:
    """Paper-scale extrapolation factors (edge ratio, node ratio)."""
    ps = paper_stats(name)
    return ps.edges / max(a.nnz, 1), ps.nodes / max(a.shape[0], 1)


def _render(rows: list[dict], headers: Sequence[str], title: str) -> str:
    return format_table(headers, [[r[h] for h in headers] for r in rows], title=title)


# ----------------------------------------------------------------------
# Table I — dataset statistics
# ----------------------------------------------------------------------

def run_table1(datasets: Iterable[str] = ALL_DATASETS) -> tuple[list[dict], str]:
    """Node/edge counts, average degree, and S_CSR: paper vs stand-in."""
    rows = []
    for name in datasets:
        a = load_dataset(name)
        st = compute_stats(a, clustering=False)
        ps = paper_stats(name)
        rows.append(
            {
                "Graph": name,
                "Nodes": st.nodes,
                "Nodes(paper)": ps.nodes,
                "Edges": a.nnz,
                "Edges(paper)": ps.edges,
                "AvgDeg": f"{st.average_degree:.1f}",
                "AvgDeg(paper)": ps.average_degree,
                "S_CSR[MiB]": f"{st.csr_mib:.2f}",
                "S_CSR(paper)": ps.csr_mib,
            }
        )
    headers = list(rows[0].keys())
    return rows, _render(rows, headers, "Table I — datasets (stand-in vs paper)")


# ----------------------------------------------------------------------
# Table II — compression time and ratio at alpha = 0 and alpha = 32
# ----------------------------------------------------------------------

def run_table2(
    datasets: Iterable[str] = ALL_DATASETS, alphas: Sequence[int] = (0, 32)
) -> tuple[list[dict], str]:
    """CBM build time and compression ratio per dataset and alpha."""
    rows = []
    for name in datasets:
        a = load_dataset(name)
        ps = paper_stats(name)
        for alpha in alphas:
            cbm, rep = build_cbm(a, alpha=alpha)
            paper_ratio = {0: ps.compression_ratio_a0, 32: ps.compression_ratio_a32}.get(alpha)
            rows.append(
                {
                    "Graph": name,
                    "Alpha": alpha,
                    "Time[s]": f"{rep.seconds:.4f}",
                    "S_CSR[MiB]": f"{(8 * a.nnz + 4 * (a.shape[0] + 1)) / 2**20:.2f}",
                    "S_CBM[MiB]": f"{rep.memory_bytes / 2**20:.2f}",
                    "Ratio": f"{rep.compression_ratio:.2f}",
                    "Ratio(paper)": paper_ratio if paper_ratio is not None else "-",
                }
            )
    headers = list(rows[0].keys())
    return rows, _render(rows, headers, "Table II — CBM compression (stand-in vs paper)")


# ----------------------------------------------------------------------
# Figure 2 — alpha sweep: speedup + compression ratio per dataset
# ----------------------------------------------------------------------

def run_figure2(
    datasets: Iterable[str] = ALL_DATASETS,
    alphas: Sequence[int] = (0, 1, 2, 4, 8, 16, 32),
    p: int = 500,
    *,
    measure_wall: bool = True,
    machine: MachineSpec = XEON_GOLD_6130,
) -> tuple[list[dict], str]:
    """AX speedup (sequential measured + modelled, 16-core modelled) and
    compression ratio as functions of alpha — the full Figure 2 grid."""
    rows = []
    for name in datasets:
        a = load_dataset(name)
        s_nnz, s_rows = _scales(name, a)
        x = as_rng(7).random((a.shape[1], p), dtype=np.float64).astype(np.float32)
        csr1 = predict_csr_spmm(a, p, cores=1, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
        csr16 = predict_csr_spmm(a, p, cores=16, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
        for alpha in alphas:
            cbm, rep = build_cbm(a, alpha=alpha)
            cbm1 = predict_cbm_spmm(cbm, p, cores=1, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
            cbm16 = predict_cbm_spmm(cbm, p, cores=16, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
            if measure_wall:
                cmp_ = compare(
                    "csr",
                    lambda: spmm(a, x),
                    "cbm",
                    lambda: cbm.matmul(x),
                    baseline_ops=csr_spmm_ops(a, p).total,
                    candidate_ops=cbm.scalar_ops(p).total,
                    repeats=5,
                    min_total=0.15,
                )
                wall = f"{cmp_.speedup:.2f}"
                ops = f"{cmp_.ops_ratio:.2f}"
            else:
                wall = "-"
                ops = f"{csr_spmm_ops(a, p).total / max(cbm.scalar_ops(p).total, 1):.2f}"
            rows.append(
                {
                    "Graph": name,
                    "Alpha": alpha,
                    "Ratio": f"{rep.compression_ratio:.2f}",
                    "OpsRatio": ops,
                    "WallSeq": wall,
                    "ModelSeq": f"{csr1.total_s / cbm1.total_s:.2f}",
                    "ModelPar16": f"{csr16.total_s / cbm16.total_s:.2f}",
                }
            )
    headers = list(rows[0].keys())
    return rows, _render(
        rows, headers, "Figure 2 — alpha sweep (speedups vs CSR; model at paper scale)"
    )


# ----------------------------------------------------------------------
# Table III — AX / ADX / DADX at the paper's best alphas
# ----------------------------------------------------------------------

def _build_variant(a: CSRMatrix, alpha: int, variant: str) -> tuple[CBMMatrix, CSRMatrix, np.ndarray | None]:
    """CBM matrix + equivalent weighted CSR baseline for one variant."""
    n = a.shape[0]
    if variant == "A":
        cbm, _ = build_cbm(a, alpha=alpha)
        return cbm, a, None
    rng = as_rng(13)
    d = (rng.random(n) + 0.5).astype(np.float64)
    cbm, _ = build_cbm(a, alpha=alpha, variant=variant, diag=d)
    baseline = a.scale_columns(d)
    if variant == "DAD":
        baseline = baseline.scale_rows(d)
    return cbm, baseline, d


def run_table3(
    datasets: Iterable[str] = ALL_DATASETS,
    p: int = 500,
    *,
    variants: Sequence[str] = ("A", "AD", "DAD"),
    measure_wall: bool = True,
    machine: MachineSpec = XEON_GOLD_6130,
) -> tuple[list[dict], str]:
    """AX/ADX/DADX speedups at the paper's per-dataset best alphas."""
    rows = []
    for name in datasets:
        a = load_dataset(name)
        s_nnz, s_rows = _scales(name, a)
        alpha_seq, alpha_par = PAPER_BEST_ALPHA.get(name, (4, 16))
        x = as_rng(5).random((a.shape[1], p), dtype=np.float64).astype(np.float32)
        paper_seq, paper_par = PAPER_AX_SPEEDUPS.get(name, (None, None))
        for variant in variants:
            cbm_s, base, _ = _build_variant(a, alpha_seq, variant)
            cbm_p, _, _ = _build_variant(a, alpha_par, variant)
            c1 = predict_csr_spmm(a, p, cores=1, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
            c16 = predict_csr_spmm(a, p, cores=16, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
            b1 = predict_cbm_spmm(cbm_s, p, cores=1, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
            b16 = predict_cbm_spmm(cbm_p, p, cores=16, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows)
            if measure_wall:
                cmp_ = compare(
                    "csr",
                    lambda: spmm(base, x),
                    "cbm",
                    lambda: cbm_s.matmul(x),
                    repeats=5,
                    min_total=0.15,
                )
                wall = f"{cmp_.speedup:.2f}"
            else:
                wall = "-"
            rows.append(
                {
                    "Graph": name,
                    "Kernel": f"{variant}X",
                    "Alpha(1c/16c)": f"{alpha_seq}/{alpha_par}",
                    "WallSeq": wall,
                    "ModelSeq": f"{c1.total_s / b1.total_s:.2f}",
                    "ModelPar16": f"{c16.total_s / b16.total_s:.2f}",
                    "PaperSeq(AX)": paper_seq if paper_seq is not None else "-",
                    "PaperPar(AX)": paper_par if paper_par is not None else "-",
                }
            )
    headers = list(rows[0].keys())
    return rows, _render(rows, headers, "Table III — AX/ADX/DADX speedups vs CSR")


# ----------------------------------------------------------------------
# Table IV — two-layer GCN inference
# ----------------------------------------------------------------------

def _predict_gcn(
    a: CSRMatrix,
    cbm: CBMMatrix | None,
    p: int,
    cores: int,
    machine: MachineSpec,
    s_nnz: float,
    s_rows: float,
) -> float:
    """Modelled GCN inference time: 2 sparse products + 2 dense GEMMs + ReLU.

    The dense part is identical for both formats (the dilution effect the
    paper reports in Section VI-G); GEMM time is flops / (0.75 · peak).
    """
    a_hat = normalized_adjacency(a)
    if cbm is None:
        sp = 2 * predict_csr_spmm(
            a_hat, p, cores=cores, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows
        ).total_s
    else:
        sp = 2 * predict_cbm_spmm(
            cbm, p, cores=cores, machine=machine, scale_nnz=s_nnz, scale_rows=s_rows
        ).total_s
    n_paper = a.shape[0] * s_rows
    gemm_flops = 2 * 2 * n_paper * p * p  # two n×p×p GEMMs
    dense = gemm_flops / (0.75 * machine.peak_flops_per_core * cores)
    return sp + dense


def run_table4(
    datasets: Iterable[str] = ALL_DATASETS,
    p: int = 500,
    *,
    measure_wall: bool = True,
    machine: MachineSpec = XEON_GOLD_6130,
) -> tuple[list[dict], str]:
    """Two-layer GCN inference: CSR vs CBM(DAD), wall + model speedups."""
    rows = []
    for name in datasets:
        a = load_dataset(name)
        s_nnz, s_rows = _scales(name, a)
        alpha_seq, alpha_par = PAPER_BEST_ALPHA.get(name, (4, 16))
        paper_seq, paper_par = PAPER_GCN_SPEEDUPS.get(name, (None, None))
        binary, diag = gcn_normalization(a)
        cbm_s, _ = build_cbm(binary, alpha=alpha_seq, variant=Variant.DAD, diag=diag)
        cbm_p, _ = build_cbm(binary, alpha=alpha_par, variant=Variant.DAD, diag=diag)
        csr_op = CSRAdjacency.from_graph(a)
        cbm_op = CBMAdjacency(cbm_s)
        rng = as_rng(3)
        x = rng.random((a.shape[0], p), dtype=np.float64).astype(np.float32)
        w0 = (rng.random((p, p), dtype=np.float64).astype(np.float32) - 0.5) / np.sqrt(p)
        w1 = (rng.random((p, p), dtype=np.float64).astype(np.float32) - 0.5) / np.sqrt(p)
        if measure_wall:
            cmp_ = compare(
                "gcn-csr",
                lambda: two_layer_gcn_inference(csr_op, x, w0, w1),
                "gcn-cbm",
                lambda: two_layer_gcn_inference(cbm_op, x, w0, w1),
                repeats=5,
                min_total=0.2,
            )
            wall = f"{cmp_.speedup:.2f}"
        else:
            wall = "-"
        m1_csr = _predict_gcn(a, None, p, 1, machine, s_nnz, s_rows)
        m1_cbm = _predict_gcn(a, cbm_s, p, 1, machine, s_nnz, s_rows)
        m16_csr = _predict_gcn(a, None, p, 16, machine, s_nnz, s_rows)
        m16_cbm = _predict_gcn(a, cbm_p, p, 16, machine, s_nnz, s_rows)
        rows.append(
            {
                "Graph": name,
                "Alpha(1c/16c)": f"{alpha_seq}/{alpha_par}",
                "WallSeq": wall,
                "ModelSeq": f"{m1_csr / m1_cbm:.2f}",
                "ModelPar16": f"{m16_csr / m16_cbm:.2f}",
                "PaperSeq": paper_seq if paper_seq is not None else "-",
                "PaperPar": paper_par if paper_par is not None else "-",
            }
        )
    headers = list(rows[0].keys())
    return rows, _render(rows, headers, "Table IV — two-layer GCN inference speedup vs CSR")


# ----------------------------------------------------------------------
# Training extension (paper Section VIII future work)
# ----------------------------------------------------------------------

def run_training_table(
    datasets: Iterable[str] = ("Cora", "PubMed", "ca-HepPh", "ca-AstroPh"),
    *,
    feature_dim: int = 128,
    hidden: int = 128,
    epochs: int = 3,
) -> tuple[list[dict], str]:
    """GCN training-step time, CSR vs CBM (forward + manual backward).

    Each epoch multiplies Â with activations and with gradients — the
    sequence of sparse products the paper's future-work section targets.
    Since Â is symmetric, one CBM matrix serves both directions.
    """
    from repro.gnn.gcn import GCN
    from repro.gnn.train import cross_entropy
    from repro.bench.harness import time_kernel

    rows = []
    for name in datasets:
        a = load_dataset(name)
        n = a.shape[0]
        rng = as_rng(17)
        x = rng.random((n, feature_dim), dtype=np.float64).astype(np.float32)
        labels = rng.integers(0, 4, size=n)
        mask = rng.random(n) < 0.2
        alpha_seq, _ = PAPER_BEST_ALPHA.get(name, (4, 16))
        results = {}
        for kind in ("csr", "cbm"):
            op = (
                CSRAdjacency.from_graph(a)
                if kind == "csr"
                else CBMAdjacency.from_graph(a, alpha=alpha_seq)
            )
            model = GCN([feature_dim, hidden, 4], seed=1, requires_grad=True)

            def step():
                logits = model.forward(op, x)
                _, grad = cross_entropy(logits, labels, mask)
                model.backward(op, grad)

            results[kind] = time_kernel(
                f"train-{kind}", step, repeats=max(epochs, 3), min_total=0.2
            ).mean_s
        rows.append(
            {
                "Graph": name,
                "Alpha": alpha_seq,
                "T_csr[s]": f"{results['csr']:.4f}",
                "T_cbm[s]": f"{results['cbm']:.4f}",
                "Speedup": f"{results['csr'] / results['cbm']:.2f}",
            }
        )
    headers = list(rows[0].keys())
    return rows, _render(
        rows,
        headers,
        "Training extension — GCN forward+backward step, CSR vs CBM (1 core)",
    )


# ----------------------------------------------------------------------
# Table V — clustering coefficient vs compression ratio
# ----------------------------------------------------------------------

def run_table5(datasets: Iterable[str] = ALL_DATASETS) -> tuple[list[dict], str]:
    """Average clustering coefficient next to the alpha=0 compression ratio,
    sorted by ratio ascending as in the paper."""
    rows = []
    for name in datasets:
        a = load_dataset(name)
        st = compute_stats(a, clustering=True)
        _, rep = build_cbm(a, alpha=0)
        ps = paper_stats(name)
        rows.append(
            {
                "Graph": name,
                "AvgDeg": f"{st.average_degree:.1f}",
                "AvgClustering": f"{st.average_clustering:.2f}",
                "Clustering(paper)": ps.average_clustering,
                "Ratio": f"{rep.compression_ratio:.2f}",
                "Ratio(paper)": ps.compression_ratio_a0,
                "_ratio_value": rep.compression_ratio,
            }
        )
    rows.sort(key=lambda r: r["_ratio_value"])
    for r in rows:
        del r["_ratio_value"]
    headers = list(rows[0].keys())
    return rows, _render(rows, headers, "Table V — clustering coefficient vs compression ratio")
