"""Persistence for CBM matrices.

The paper's workflow assumes the graph "could also be offered in CBM"
the way datasets ship pre-converted to CSR — compression is a one-off
preprocessing step whose result is stored.  This module provides that
step: a compact ``.npz``-based container holding the compression tree,
the delta matrix, the variant, and the diagonal vectors.

Format: NumPy ``savez_compressed`` archive with a ``meta`` JSON header;
version-tagged so future layout changes stay loadable.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.core.cbm import CBMMatrix, Variant
from repro.core.tree import CompressionTree
from repro.errors import FormatError
from repro.sparse.csr import CSRMatrix

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def save_cbm(path: PathLike, cbm: CBMMatrix) -> None:
    """Write ``cbm`` to ``path`` as a compressed ``.npz`` archive."""
    meta = {
        "version": _FORMAT_VERSION,
        "variant": cbm.variant.value,
        "alpha": cbm.alpha,
        "source_nnz": cbm.source_nnz,
        "shape": list(cbm.shape),
    }
    arrays = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        "tree_parent": cbm.tree.parent,
        "tree_weight": cbm.tree.weight,
        "delta_indptr": cbm.delta.indptr,
        "delta_indices": cbm.delta.indices,
        "delta_data": cbm.delta.data,
    }
    if cbm.diag is not None:
        arrays["diag"] = np.asarray(cbm.diag)
    if cbm.diag_left is not None:
        arrays["diag_left"] = np.asarray(cbm.diag_left)
    np.savez_compressed(path, **arrays)


def load_cbm(path: PathLike) -> CBMMatrix:
    """Load a CBM matrix previously stored with :func:`save_cbm`.

    Validates the format version and rebuilds the tree and delta matrix
    with full structural checks (a corrupted archive raises
    :class:`~repro.errors.FormatError` or a tree/CSR validation error
    rather than yielding silently wrong products).
    """
    with np.load(path) as archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise FormatError(f"not a CBM archive: {path}") from exc
        if meta.get("version") != _FORMAT_VERSION:
            raise FormatError(
                f"unsupported CBM archive version {meta.get('version')!r} in {path}"
            )
        shape = tuple(meta["shape"])
        tree = CompressionTree(
            parent=archive["tree_parent"], weight=archive["tree_weight"]
        )
        delta = CSRMatrix(
            archive["delta_indptr"],
            archive["delta_indices"],
            archive["delta_data"],
            shape,
        )
        diag = archive["diag"] if "diag" in archive.files else None
        diag_left = archive["diag_left"] if "diag_left" in archive.files else None
    return CBMMatrix(
        tree=tree,
        delta=delta,
        variant=Variant(meta["variant"]),
        diag=diag,
        diag_left=diag_left,
        source_nnz=int(meta["source_nnz"]),
        alpha=meta["alpha"],
    )
