"""Persistence for CBM matrices.

The paper's workflow assumes the graph "could also be offered in CBM"
the way datasets ship pre-converted to CSR — compression is a one-off
preprocessing step whose result is stored.  This module provides that
step: a compact ``.npz``-based container holding the compression tree,
the delta matrix, the variant, and the diagonal vectors.

Format: NumPy ``savez_compressed`` archive with a ``meta`` JSON header;
version-tagged so future layout changes stay loadable.  Since version 2
the header also records a CRC-32 checksum of every payload array's raw
bytes; :func:`load_cbm` verifies them and raises
:class:`~repro.errors.IntegrityError` on mismatch, so a corrupted
archive fails loudly instead of loading garbage that would yield
silently wrong products.  Version-1 archives (no checksums) remain
loadable, protected only by the structural validators.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from typing import Union

import numpy as np

from repro.core.cbm import CBMMatrix, Variant
from repro.core.tree import CompressionTree
from repro.errors import FormatError, IntegrityError
from repro.recovery.atomic import atomic_write
from repro.sparse.csr import CSRMatrix

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 2
_CHECKSUMMED_VERSIONS = (2,)
_LOADABLE_VERSIONS = (1, 2)


def checksum_array(arr: np.ndarray) -> int:
    """CRC-32 of an array's raw bytes (contiguous, native order)."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


def _payload_arrays(cbm: CBMMatrix) -> dict[str, np.ndarray]:
    arrays = {
        "tree_parent": cbm.tree.parent,
        "tree_weight": cbm.tree.weight,
        "delta_indptr": cbm.delta.indptr,
        "delta_indices": cbm.delta.indices,
        "delta_data": cbm.delta.data,
    }
    if cbm.diag is not None:
        arrays["diag"] = np.asarray(cbm.diag)
    if cbm.diag_left is not None:
        arrays["diag_left"] = np.asarray(cbm.diag_left)
    return arrays


def save_cbm(path: PathLike, cbm: CBMMatrix) -> None:
    """Write ``cbm`` to ``path`` as a compressed ``.npz`` archive.

    The ``meta`` header embeds a CRC-32 per payload array so
    :func:`load_cbm` can detect corruption of the stored bytes.  The
    archive lands via :func:`repro.recovery.atomic_write`: a crash mid-
    save leaves any previous version of ``path`` intact instead of a
    torn file.
    """
    arrays = _payload_arrays(cbm)
    meta = {
        "version": _FORMAT_VERSION,
        "variant": cbm.variant.value,
        "alpha": cbm.alpha,
        "source_nnz": cbm.source_nnz,
        "shape": list(cbm.shape),
        "checksums": {name: checksum_array(arr) for name, arr in arrays.items()},
    }
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"  # np.savez appended it for plain paths; keep that contract
    with atomic_write(path, mode="wb") as fh:
        np.savez_compressed(fh, **arrays)


def _verify_checksums(meta: dict, archive, path: PathLike) -> None:
    checksums = meta.get("checksums")
    if not isinstance(checksums, dict):
        raise IntegrityError(f"CBM archive {path} is missing its checksum table")
    for name, expected in checksums.items():
        if name not in archive.files:
            raise IntegrityError(f"CBM archive {path} is missing payload {name!r}")
        actual = checksum_array(archive[name])
        if actual != int(expected):
            raise IntegrityError(
                f"CBM archive {path}: checksum mismatch for {name!r} "
                f"(stored {int(expected):#010x}, computed {actual:#010x}) — "
                "the archive is corrupted"
            )


#: Exceptions the zip/deflate layer raises on a physically damaged file;
#: :func:`load_cbm` maps them to :class:`~repro.errors.IntegrityError` so
#: a torn archive fails with the same typed error as a stale checksum.
_TORN_ARCHIVE_ERRORS = (zipfile.BadZipFile, EOFError, zlib.error)


def load_cbm(path: PathLike) -> CBMMatrix:
    """Load a CBM matrix previously stored with :func:`save_cbm`.

    Validates the format version, verifies the payload checksums
    (version ≥ 2), and rebuilds the tree and delta matrix with full
    structural checks — a corrupted archive raises
    :class:`~repro.errors.IntegrityError` /
    :class:`~repro.errors.FormatError` or a tree/CSR validation error
    rather than yielding silently wrong products.  A *physically*
    truncated or torn file (e.g. a crash mid-copy) also surfaces as
    :class:`~repro.errors.IntegrityError`, never as a bare
    ``zipfile.BadZipFile``.
    """
    try:
        archive = np.load(path)
    except FileNotFoundError:
        raise
    except _TORN_ARCHIVE_ERRORS as exc:
        raise IntegrityError(
            f"CBM archive {path} is truncated or torn ({exc}) — "
            "the file was damaged after (or while) being written"
        ) from exc
    except (ValueError, OSError) as exc:
        raise FormatError(f"not a CBM archive: {path} ({exc})") from exc
    try:
        with archive:
            try:
                meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
            except (KeyError, ValueError) as exc:
                raise FormatError(f"not a CBM archive: {path}") from exc
            if meta.get("version") not in _LOADABLE_VERSIONS:
                raise FormatError(
                    f"unsupported CBM archive version {meta.get('version')!r} in {path}"
                )
            if meta["version"] in _CHECKSUMMED_VERSIONS:
                _verify_checksums(meta, archive, path)
            shape = tuple(meta["shape"])
            tree = CompressionTree(
                parent=archive["tree_parent"], weight=archive["tree_weight"]
            )
            delta = CSRMatrix(
                archive["delta_indptr"],
                archive["delta_indices"],
                archive["delta_data"],
                shape,
            )
            diag = archive["diag"] if "diag" in archive.files else None
            diag_left = archive["diag_left"] if "diag_left" in archive.files else None
    except _TORN_ARCHIVE_ERRORS as exc:
        raise IntegrityError(
            f"CBM archive {path} is truncated or torn ({exc}) — "
            "a payload member could not be read back"
        ) from exc
    return CBMMatrix(
        tree=tree,
        delta=delta,
        variant=Variant(meta["variant"]),
        diag=diag,
        diag_left=diag_left,
        source_nnz=int(meta["source_nnz"]),
        alpha=meta["alpha"],
    )
