"""The Compressed Binary Matrix (CBM) — public container and kernels.

A :class:`CBMMatrix` holds a binary matrix ``A`` (or its column/row scaled
forms ``AD`` / ``DAD``) as a compression tree plus a CSR delta matrix, and
multiplies with dense operands per Sections IV–V of the paper:

1. **Multiplication stage** — one sparse-dense product ``A′ @ B`` (or
   ``(AD)′ @ B``) on the shared high-performance backend.
2. **Update stage** — propagate partial results down the compression tree.
   The paper performs one ``axpy`` per tree edge in topological order;
   here edges are grouped by tree depth and each level is applied as one
   vectorised batched row addition (parents of level-k rows live strictly
   above level k, so a level is dependency-free).  The per-edge variant is
   retained for the ablation benchmark, and the branch-parallel execution
   of Section V-B lives in :mod:`repro.parallel`.

For ``DADX`` two update modes exist: ``"fused"`` follows Eq. 6 literally
(scale while updating), ``"deferred"`` accumulates unscaled partial sums
and applies one final row scaling — mathematically identical, fewer flops;
the ablation benchmark compares them.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core import opcount
from repro.core.deltas import reconstruct_rows, scale_delta_matrix
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import ShapeError
from repro.runtime.plan import KernelPlan
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import Engine, spmm, spmv
from repro.utils.validation import check_dense, ensure_array

UpdateMode = Literal["level", "edge"]
ScalingMode = Literal["deferred", "fused"]


class Variant(enum.Enum):
    """Which factorised form the CBM matrix represents."""

    A = "A"  # plain binary matrix
    AD = "AD"  # column-scaled: A @ diag(d)
    DAD = "DAD"  # row- and column-scaled: diag(d) @ A @ diag(d)
    D1AD2 = "D1AD2"  # general two-diagonal form: diag(d1) @ A @ diag(d2)


@dataclass
class CBMMatrix:
    """A binary (or diagonally scaled binary) matrix in CBM format.

    Build instances with :func:`repro.core.builder.build_cbm`; the
    constructor is public for tests and power users but performs no
    compression itself.

    Attributes
    ----------
    tree:
        The compression tree (parents, per-row delta counts).
    delta:
        The *unscaled* delta matrix A′ with entries in {+1, −1}.
    variant:
        Which product the matrix represents (A, AD, DAD).
    diag:
        The (right) diagonal vector d for AD/DAD/D1AD2 variants (None for
        A).  For DAD the same vector also scales rows.
    diag_left:
        The left diagonal d1 of the general D1AD2 form (required for that
        variant, ignored otherwise) — the paper notes the format "can be
        easily extended" to distinct diagonals; this is that extension.
    source_nnz:
        nnz of the original matrix; backs Property-1/2 checks and the
        compression-ratio computation.
    """

    tree: CompressionTree
    delta: CSRMatrix
    variant: Variant = Variant.A
    diag: np.ndarray | None = None
    diag_left: np.ndarray | None = None
    source_nnz: int = 0
    alpha: int | None = 0
    _scaled_delta: CSRMatrix | None = field(default=None, repr=False, compare=False)
    _plans: dict = field(default_factory=dict, repr=False, compare=False)
    _plan_version: int = field(default=0, repr=False, compare=False)
    _plan_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.tree.n != self.delta.shape[0]:
            raise ShapeError(
                f"tree covers {self.tree.n} rows, delta matrix has {self.delta.shape[0]}"
            )
        self.variant = Variant(self.variant)
        if self.variant is not Variant.A:
            if self.diag is None:
                raise ShapeError(f"variant {self.variant.value} requires a diagonal vector")
            self.diag = ensure_array(self.diag, dtype=np.float64, name="diag").ravel()
            if len(self.diag) != self.delta.shape[1]:
                raise ShapeError.mismatch("diag", (len(self.diag),), self.delta.shape)
            if np.any(self.diag == 0):
                raise ValueError(
                    "diagonal entries must be non-zero for AD/DAD round-trips"
                )
        if self.variant is Variant.DAD and self.delta.shape[0] != self.delta.shape[1]:
            raise ShapeError(
                "variant DAD requires a square matrix (one diagonal scales "
                "both sides); use D1AD2 for rectangular matrices"
            )
        if self.variant is Variant.D1AD2:
            if self.diag_left is None:
                raise ShapeError("variant D1AD2 requires diag_left (d1) and diag (d2)")
            self.diag_left = ensure_array(
                self.diag_left, dtype=np.float64, name="diag_left"
            ).ravel()
            if len(self.diag_left) != self.delta.shape[0]:
                raise ShapeError.mismatch(
                    "diag_left", (len(self.diag_left),), self.delta.shape
                )
            if np.any(self.diag_left == 0):
                raise ValueError("diag_left entries must be non-zero")

    def _row_diag(self) -> np.ndarray:
        """The row-scaling diagonal: d for DAD, d1 for D1AD2."""
        return self.diag_left if self.variant is Variant.D1AD2 else self.diag

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.delta.shape

    @property
    def n(self) -> int:
        return self.delta.shape[0]

    @property
    def num_deltas(self) -> int:
        """Total delta count — Property 1 bounds this by ``source_nnz``."""
        return self.delta.nnz

    def _multiply_operand(self) -> CSRMatrix:
        """The matrix fed to the multiplication stage: A′ or (AD)′ (cached)."""
        if self.variant is Variant.A:
            return self.delta
        if self._scaled_delta is None:
            self._scaled_delta = scale_delta_matrix(self.delta, self.diag)
        return self._scaled_delta

    # ------------------------------------------------------------------
    # Plan/execute runtime (repro.runtime)
    # ------------------------------------------------------------------
    @property
    def plan_version(self) -> int:
        """Monotonic counter bumped by :meth:`invalidate`; plans snapshot it."""
        return self._plan_version

    def plan(
        self,
        *,
        update: UpdateMode = "level",
        scaling: ScalingMode = "deferred",
    ) -> KernelPlan:
        """The cached :class:`~repro.runtime.plan.KernelPlan` for this config.

        Built on first use and reused by every subsequent
        :meth:`matmul`/:meth:`matvec` with the same options; rebuilt
        automatically when :meth:`invalidate` was called or the
        tree/delta/diagonal objects were replaced.
        """
        key = (update, scaling)
        with self._plan_lock:
            pl = self._plans.get(key)
            if pl is None or not pl.matches(self):
                pl = KernelPlan(self, update=update, scaling=scaling)
                self._plans[key] = pl
            return pl

    def invalidate(self) -> None:
        """Drop every cached plan and derived operand.

        Call after mutating the tree, delta matrix, or diagonals in
        place; replacing those attributes with *new* objects is detected
        automatically, but in-place mutation is invisible to the plan
        fingerprint.
        """
        with self._plan_lock:
            self._plan_version += 1
            self._plans.clear()
            self._scaled_delta = None

    def drain_workspaces(self) -> int:
        """Free the idle workspace buffers of every cached plan.

        Returns the number of bytes released.  Used when the matrix is
        being retired (the serving layer hot-swapped its archive): the
        plans stay usable for in-flight calls, but their pooled buffers
        should not outlive the matrix's serving life.
        """
        with self._plan_lock:
            plans = list(self._plans.values())
        return sum(p.pool.drain() for p in plans)

    # ------------------------------------------------------------------
    def matmul(
        self,
        b: np.ndarray,
        *,
        update: UpdateMode = "level",
        scaling: ScalingMode = "deferred",
        engine: Engine | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Dense product ``M @ b`` where M is A, AD, or DAD per the variant.

        Executes through the cached :class:`KernelPlan` (plan once,
        execute per call).  ``out``, if given, receives the result and
        must be C-contiguous, correctly shaped, and must not alias ``b``.
        :meth:`matmul_unplanned` is the per-call reference path.
        """
        return self.plan(update=update, scaling=scaling).execute(b, out=out, engine=engine)

    def matmul_unplanned(
        self,
        b: np.ndarray,
        *,
        update: UpdateMode = "level",
        scaling: ScalingMode = "deferred",
        engine: Engine | None = None,
    ) -> np.ndarray:
        """Reference per-call path: recompute the schedule on every product.

        This is the pre-runtime behaviour — the level grouping (or the
        topological order) is derived from the tree per call and the
        diagonal is re-broadcast per call.  The test suite compares the
        planned path against it; the runtime benchmark measures the gap.
        """
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("CBM matmul", self.shape, b.shape)
        c = spmm(self._multiply_operand(), b, engine=engine)
        self._apply_update(c, update=update, scaling=scaling)
        return c

    def matvec(
        self,
        v: np.ndarray,
        *,
        update: UpdateMode = "level",
        scaling: ScalingMode = "deferred",
        engine: Engine | None = None,
    ) -> np.ndarray:
        """Dense product ``M @ v`` for a 1-D vector ``v`` (planned path)."""
        return self.plan(update=update, scaling=scaling).execute_vec(v, engine=engine)

    def matvec_unplanned(
        self,
        v: np.ndarray,
        *,
        update: UpdateMode = "level",
        scaling: ScalingMode = "deferred",
        engine: Engine | None = None,
    ) -> np.ndarray:
        """Reference per-call ``M @ v``.

        This is the paper's Section IV kernel in its native shape: one
        sparse matrix–vector product with the delta matrix, then scalar
        updates ``u_x += u_{r_x}`` down the compression tree (Eq. 5) —
        no 2-D reshaping, no column dimension.
        """
        v = check_dense(v, name="v", ndim=1)
        if v.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("CBM matvec", self.shape, v.shape)
        u = spmv(self._multiply_operand(), v, engine=engine)
        parent = self.tree.parent
        row_scaled = self.variant in (Variant.DAD, Variant.D1AD2)
        if update == "level":
            if row_scaled and scaling == "fused":
                d = self._row_diag()
                roots = self.tree.roots
                u[roots] *= d[roots]
                for lv in self.tree.levels():
                    ps = parent[lv]
                    u[lv] = d[lv] * (u[ps] / d[ps] + u[lv])
                return u
            for lv in self.tree.levels():
                u[lv] += u[parent[lv]]
        elif update == "edge":
            order = self.tree.topological_order()
            if row_scaled and scaling == "fused":
                d = self._row_diag()
                for x in order:
                    p = parent[x]
                    if p == VIRTUAL:
                        u[x] *= d[x]
                    else:
                        u[x] = d[x] * (u[p] / d[p] + u[x])
                return u
            for x in order:
                p = parent[x]
                if p != VIRTUAL:
                    u[x] += u[p]
        else:
            raise ValueError(f"unknown update mode {update!r}")
        if row_scaled:
            u *= np.asarray(self._row_diag())
        return u

    def __matmul__(self, b) -> np.ndarray:
        b = np.asarray(b)
        if b.ndim == 1:
            return self.matvec(b)
        return self.matmul(b)

    # ------------------------------------------------------------------
    def _apply_update(self, c: np.ndarray, *, update: UpdateMode, scaling: ScalingMode) -> None:
        """Run the update stage in place on the multiplication-stage output."""
        if update == "level":
            self._update_levels(c, scaling)
        elif update == "edge":
            self._update_edges(c, scaling)
        else:
            raise ValueError(f"unknown update mode {update!r}")

    def _update_levels(self, c: np.ndarray, scaling: ScalingMode) -> None:
        """Vectorised level-schedule update, mutating ``c`` in place."""
        parent = self.tree.parent
        row_scaled = self.variant in (Variant.DAD, Variant.D1AD2)
        if row_scaled and scaling == "fused":
            d = self._row_diag()
            roots = self.tree.roots
            c[roots] *= d[roots, None]
            for lv in self.tree.levels():
                ps = parent[lv]
                c[lv] = d[lv, None] * (c[ps] / d[ps, None] + c[lv])
            return
        for lv in self.tree.levels():
            c[lv] += c[parent[lv]]
        if row_scaled:
            c *= np.asarray(self._row_diag())[:, None]

    def _update_edges(self, c: np.ndarray, scaling: ScalingMode) -> None:
        """Paper-literal update, in place on ``c``: one axpy per tree edge
        in topological order."""
        parent = self.tree.parent
        row_scaled = self.variant in (Variant.DAD, Variant.D1AD2)
        order = self.tree.topological_order()
        if row_scaled and scaling == "fused":
            d = self._row_diag()
            for x in order:
                p = parent[x]
                if p == VIRTUAL:
                    c[x] *= d[x]
                else:
                    c[x] = d[x] * (c[p] / d[p] + c[x])
            return
        for x in order:
            p = parent[x]
            if p != VIRTUAL:
                c[x] += c[p]
        if row_scaled:
            c *= np.asarray(self._row_diag())[:, None]

    # ------------------------------------------------------------------
    def tocsr(self) -> CSRMatrix:
        """Decompress back to CSR (binary for A; scaled values for AD/DAD)."""
        binary = reconstruct_rows(self.delta, self.tree)
        if self.variant is Variant.A:
            return binary
        scaled = binary.scale_columns(np.asarray(self.diag, dtype=np.float64))
        if self.variant in (Variant.DAD, Variant.D1AD2):
            scaled = scaled.scale_rows(np.asarray(self._row_diag(), dtype=np.float64))
        return scaled

    def todense(self) -> np.ndarray:
        return self.tocsr().toarray()

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Paper-convention CBM footprint (delta CSR + tree edges)."""
        return opcount.cbm_memory_bytes(self.delta, self.tree)

    def compression_ratio(self) -> float:
        """``S_CSR / S_CBM`` against the paper's CSR accounting of the source."""
        n = self.n
        s_csr = 8 * self.source_nnz + 4 * (n + 1)
        return s_csr / self.memory_bytes()

    def scalar_ops(self, p: int) -> opcount.OpCount:
        """Scalar operations of one ``matmul`` against p dense columns."""
        return opcount.cbm_spmm_ops(self.delta, self.tree, p, variant=self.variant.value)

    def stats(self) -> dict:
        """Compression summary for reports: deltas, tree shape, footprint."""
        out = self.tree.stats()
        out.update(
            {
                "variant": self.variant.value,
                "alpha": self.alpha,
                "source_nnz": self.source_nnz,
                "deltas": self.num_deltas,
                "memory_bytes": self.memory_bytes(),
                "compression_ratio": self.compression_ratio() if self.source_nnz else None,
            }
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CBMMatrix(variant={self.variant.value}, shape={self.shape}, "
            f"deltas={self.num_deltas}, tree_edges={self.tree.num_tree_edges}, "
            f"alpha={self.alpha})"
        )
