"""Björklund–Lingas (WADS 2001) differential compression — ablation.

The paper's closest theoretical ancestor (Section VII) also builds an MST
over row Hamming distances, but *without* the virtual node: each
connected component of the similarity graph is spanned by an MST rooted
at its lightest row, and rows keep their tree parent even when the deltas
exceed the row's own nnz.  Consequently it lacks the paper's Property 1
(compressed size ≤ nnz) and Property 2 (ops ≤ sparse baseline).

Implementing it against the same delta/CBM machinery lets the test suite
and benchmarks demonstrate *why* the virtual node matters: on graphs with
dissimilar-but-overlapping rows the BL tree is measurably worse, and on
every input ``total_deltas(BL) >= total_deltas(CBM)``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.builder import BuildReport
from repro.core.cbm import CBMMatrix, Variant
from repro.core.deltas import build_delta_matrix
from repro.core.distance import DistanceGraph
from repro.core.mst import UnionFind
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import NotBinaryError, ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_sparse_matmul


def _all_overlap_edges(a: CSRMatrix) -> DistanceGraph:
    """Un-pruned undirected similarity edges (every overlapping pair).

    Unlike :func:`repro.core.distance.candidate_edges`, no safety filter
    is applied — the filter's correctness argument routes through the
    virtual node, which this scheme does not have.
    """
    aat = sparse_sparse_matmul(a, a.transpose())
    coo = aat.tocoo()
    keep = coo.rows > coo.cols
    xs, ys, ov = coo.rows[keep], coo.cols[keep], coo.data[keep].astype(np.int64)
    nnz = a.row_nnz().astype(np.int64)
    w = nnz[xs] + nnz[ys] - 2 * ov
    return DistanceGraph(
        n=a.shape[0], src=xs, dst=ys, weight=w, row_nnz=nnz, directed=False, alpha=None
    )


def build_bl2001(a: CSRMatrix) -> tuple[CBMMatrix, BuildReport]:
    """Compress ``a`` with the Björklund–Lingas construction.

    Returns the same container type as :func:`~repro.core.builder.build_cbm`
    (the multiplication kernels are shared), so the two schemes can be
    compared on identical footing.
    """
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"BL compression requires a square matrix, got {a.shape}")
    if not a.is_binary():
        raise NotBinaryError("BL compression requires a binary matrix")
    t0 = time.perf_counter()
    g = _all_overlap_edges(a)
    n = g.n
    order = np.argsort(g.weight, kind="stable")
    uf = UnionFind(n)
    chosen: list[tuple[int, int, int]] = []
    for k in order:
        u, v, w = int(g.src[k]), int(g.dst[k]), int(g.weight[k])
        if uf.union(u, v):
            chosen.append((u, v, w))
    # Per-component root: the row with the fewest non-zeros.
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for u, v, w in chosen:
        adj[u].append((v, w))
        adj[v].append((u, w))
    comp_root: dict[int, int] = {}
    nnz = g.row_nnz
    for x in range(n):
        r = uf.find(x)
        if r not in comp_root or nnz[x] < nnz[comp_root[r]]:
            comp_root[r] = x
    parent = np.full(n, VIRTUAL, dtype=np.int64)
    weight = nnz.copy()
    visited = np.zeros(n, dtype=bool)
    for root in comp_root.values():
        stack = [root]
        visited[root] = True
        while stack:
            u = stack.pop()
            for v, w in adj[u]:
                if not visited[v]:
                    visited[v] = True
                    parent[v] = u
                    weight[v] = w  # kept even when w > nnz(v): no Property 1
                    stack.append(v)
    tree = CompressionTree(parent=parent, weight=weight)
    delta = build_delta_matrix(a, tree)
    elapsed = time.perf_counter() - t0
    cbm = CBMMatrix(
        tree=tree, delta=delta, variant=Variant.A, source_nnz=a.nnz, alpha=None
    )
    report = BuildReport(
        seconds=elapsed,
        candidate_edges=g.num_edges,
        tree_edges=tree.num_tree_edges,
        roots=int(len(tree.roots)),
        total_deltas=delta.nnz,
        source_nnz=a.nnz,
        memory_bytes=cbm.memory_bytes(),
        compression_ratio=cbm.compression_ratio(),
    )
    return cbm, report
