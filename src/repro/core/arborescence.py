"""Minimum-cost arborescence (Chu–Liu/Edmonds) for pruned distance graphs.

With edge pruning enabled (alpha > 0, Section V-C) the distance graph is
directed, so the compression tree is a minimum-cost arborescence rooted at
the virtual node.  This module implements Chu–Liu/Edmonds from scratch
with full parent recovery:

1.  Every non-root node picks its cheapest incoming edge (vectorised
    argmin per destination).
2.  If the picked edges are acyclic they form the arborescence.
3.  Otherwise every cycle is contracted into a supernode, entering-edge
    weights are reduced by the cycle edge they displace, and the algorithm
    recurses on the contracted multigraph.  Expansion walks the
    contraction levels backwards: inside each cycle all picked edges are
    kept except the one entering the node where the external edge lands.

Each contraction round is O(E) NumPy work; the number of rounds is bounded
by the number of simultaneous cycles, small in practice.  Total complexity
matches the paper's stated O(n² log n) bound on dense graphs and is far
lower on the pruned graphs it is actually applied to.

Ties are broken toward virtual-node edges, mirroring the MST tie rule
(worthless compression opportunities go to the adjacency-list case, which
also raises the virtual root's out-degree — the parallelism knob of
Section V-C).
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import DistanceGraph
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import CompressionError


def _pick_min_incoming(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray, is_real: np.ndarray, nodes: int, root: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cheapest incoming edge index per node (or -1); ties prefer virtual."""
    pick = np.full(nodes, -1, dtype=np.int64)
    minw = np.zeros(nodes, dtype=np.int64)
    if len(src) == 0:
        return pick, minw
    order = np.lexsort((is_real, w, dst))
    sd = dst[order]
    first = np.ones(len(sd), dtype=bool)
    first[1:] = sd[1:] != sd[:-1]
    sel = order[first]
    pick[dst[sel]] = sel
    minw[dst[sel]] = w[sel]
    pick[root] = -1
    return pick, minw


def _find_cycles(pick: np.ndarray, src: np.ndarray, nodes: int, root: int) -> list[np.ndarray]:
    """Cycles in the functional graph v -> src[pick[v]] (root excluded)."""
    color = np.zeros(nodes, dtype=np.int8)  # 0 unseen, 1 on stack, 2 done
    cycles: list[np.ndarray] = []
    for start in range(nodes):
        if color[start] != 0 or start == root:
            continue
        path = []
        v = start
        while v != root and color[v] == 0 and pick[v] >= 0:
            color[v] = 1
            path.append(v)
            v = int(src[pick[v]])
        if v != root and color[v] == 1 and pick[v] >= 0:
            # Found a new cycle: the tail of `path` starting at v.
            k = path.index(v)
            cycles.append(np.asarray(path[k:], dtype=np.int64))
        for u in path:
            color[u] = 2
    return cycles


def minimum_arborescence(g: DistanceGraph) -> CompressionTree:
    """Minimum-cost arborescence of the virtual-rooted distance graph.

    Accepts directed *or* undirected distance graphs (an undirected graph
    is expanded to both orientations first — on symmetric weights the
    result has the same cost as the MST, a property the test suite pins).
    """
    n = g.n
    if g.directed:
        e_src, e_dst, e_w = g.src, g.dst, g.weight
    else:
        e_src = np.concatenate([g.src, g.dst])
        e_dst = np.concatenate([g.dst, g.src])
        e_w = np.concatenate([g.weight, g.weight])
    root = n
    # Combined edge arrays; original edge ids index into these.
    src0 = np.concatenate([e_src, np.full(n, root, dtype=np.int64)])
    dst0 = np.concatenate([e_dst, np.arange(n, dtype=np.int64)])
    w0 = np.concatenate([e_w, g.row_nnz]).astype(np.int64)
    is_real0 = np.concatenate(
        [np.ones(len(e_src), dtype=np.int8), np.zeros(n, dtype=np.int8)]
    )

    # Current contracted graph.
    src, dst, w = src0.copy(), dst0.copy(), w0.copy()
    is_real = is_real0.copy()
    eid = np.arange(len(src0), dtype=np.int64)
    nodes = n + 1
    cur_root = root

    # Per-level records for expansion.
    levels: list[dict] = []

    for _ in range(n + 1):
        pick, minw = _pick_min_incoming(src, dst, w, is_real, nodes, cur_root)
        missing = np.flatnonzero(pick < 0)
        missing = missing[missing != cur_root]
        if len(missing):
            raise CompressionError(
                f"arborescence: node(s) {missing[:5]} have no incoming edge"
            )
        cycles = _find_cycles(pick, src, nodes, cur_root)
        if not cycles:
            chosen = {int(v): int(eid[pick[v]]) for v in range(nodes) if v != cur_root}
            selected = set(chosen.values())
            break

        # Contract all cycles simultaneously.
        node_map = np.full(nodes, -1, dtype=np.int64)
        in_cycle = np.zeros(nodes, dtype=bool)
        for c in cycles:
            in_cycle[c] = True
        new_id = 0
        for v in range(nodes):
            if not in_cycle[v]:
                node_map[v] = new_id
                new_id += 1
        cycle_ids = []
        for c in cycles:
            node_map[c] = new_id
            cycle_ids.append(new_id)
            new_id += 1

        levels.append(
            {
                # eid is strictly increasing (arange filtered by masks), so
                # level-local dst lookups can use searchsorted at expansion.
                "eid": eid,
                "dst": dst,
                "nodes": nodes,
                "pick_eid": {
                    int(v): int(eid[pick[v]]) for v in range(nodes) if v != cur_root
                },
                "cycles": cycles,
                "cycle_ids": cycle_ids,
            }
        )

        # Reduced weights: edges entering a cycle pay w - minw[dst].
        adj_w = w - np.where(in_cycle[dst], minw[dst], 0)
        new_src = node_map[src]
        new_dst = node_map[dst]
        keep = new_src != new_dst
        src, dst, w = new_src[keep], new_dst[keep], adj_w[keep]
        is_real, eid = is_real[keep], eid[keep]
        nodes = new_id
        cur_root = int(node_map[cur_root])
    else:  # pragma: no cover - guarded by CompressionError paths
        raise CompressionError("arborescence failed to converge")

    # Expand contractions from the last (most contracted) level outward:
    # after processing a level, `selected` is an arborescence on that
    # level's pre-contraction node set.  Entry-edge lookups are vectorised:
    # map every selected edge to its level-local dst at once, then to the
    # cycle that dst belongs to (a selected edge whose level dst is inside
    # a cycle is exactly the unique external edge entering that supernode —
    # same-cycle edges were self-loops and never survived the contraction).
    for level in reversed(levels):
        level_eid, level_dst = level["eid"], level["dst"]
        sel_arr = np.fromiter(selected, dtype=np.int64, count=len(selected))
        pos = np.searchsorted(level_eid, sel_arr)
        pos_clip = np.minimum(pos, len(level_eid) - 1)
        present = level_eid[pos_clip] == sel_arr
        dsts = level_dst[pos_clip[present]]
        cyc_of = np.full(level["nodes"], -1, dtype=np.int64)
        for ci, c in enumerate(level["cycles"]):
            cyc_of[c] = ci
        hit = cyc_of[dsts] >= 0
        entry_node = dict(zip(cyc_of[dsts[hit]].tolist(), dsts[hit].tolist(), strict=True))
        for ci, c in enumerate(level["cycles"]):
            if ci not in entry_node:
                raise CompressionError("expansion: no edge enters contracted cycle")
            t = entry_node[ci]
            for v in c:
                if int(v) != t:
                    selected.add(level["pick_eid"][int(v)])

    # Selected edges now form the arborescence on original nodes.
    parent = np.full(n, VIRTUAL, dtype=np.int64)
    weight = np.zeros(n, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    for e in selected:
        t = int(dst0[e])
        if t == root:
            raise CompressionError("expansion: selected edge enters the root")
        if seen[t]:
            raise CompressionError(f"expansion: two selected edges enter row {t}")
        seen[t] = True
        s = int(src0[e])
        parent[t] = VIRTUAL if s == root else s
        weight[t] = int(w0[e])
    if not seen.all():
        raise CompressionError("expansion: some rows received no parent")
    return CompressionTree(parent=parent, weight=weight)
