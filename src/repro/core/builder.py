"""End-to-end CBM compression pipeline (paper Sections III and V-C).

:func:`build_cbm` wires the stages together:

1. candidate distance-graph construction (one sparse ``A @ Aᵀ``),
2. spanning structure — Kruskal MST for the un-pruned symmetric graph
   (``alpha = 0``, the paper's default) or Chu–Liu/Edmonds arborescence
   for pruned directed graphs (``alpha > 0``),
3. delta extraction into the CSR delta matrix,
4. assembly of the :class:`~repro.core.cbm.CBMMatrix` plus a
   :class:`BuildReport` with timings and compression statistics
   (the rows of Table II).

:func:`build_clustered` implements the paper's future-work scaling idea
(Section VIII): partition rows into similarity clusters and compress each
cluster independently, bounding the ``A @ Aᵀ`` candidate explosion and
raising update-stage parallelism at a small compression cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.arborescence import minimum_arborescence
from repro.core.cbm import CBMMatrix, Variant
from repro.core.deltas import build_delta_matrix
from repro.core.distance import DistanceGraph, candidate_edges
from repro.core.mst import kruskal_mst
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import NotBinaryError, ShapeError
from repro.sparse.csr import CSRMatrix

Method = Literal["auto", "mst", "mca"]


@dataclass(frozen=True)
class BuildReport:
    """Construction metrics — the quantities reported in Table II.

    ``stage_seconds`` breaks the total into the three pipeline stages
    (``candidates``, ``spanning``, ``deltas``) so Table-II-style analyses
    can see where construction time goes as alpha changes.
    """

    seconds: float
    candidate_edges: int
    tree_edges: int
    roots: int
    total_deltas: int
    source_nnz: int
    memory_bytes: int
    compression_ratio: float
    stage_seconds: dict | None = None


def _spanning_structure(g: DistanceGraph, method: Method) -> CompressionTree:
    if method == "mst" or (method == "auto" and not g.directed):
        return kruskal_mst(g)
    return minimum_arborescence(g)


def _validate_input(a: CSRMatrix) -> None:
    # Rectangular matrices are fine: the compression tree relates *rows*
    # to each other, so bipartite incidence matrices (author×paper, ...)
    # compress exactly like square adjacency matrices.  Only binarity
    # matters.
    if not a.is_binary():
        raise NotBinaryError(
            "CBM compression requires a binary matrix; factor scalings into "
            "the AD/DAD variants instead"
        )


def build_cbm(
    a: CSRMatrix,
    *,
    alpha: int = 0,
    variant: str | Variant = Variant.A,
    diag: np.ndarray | None = None,
    diag_left: np.ndarray | None = None,
    method: Method = "auto",
) -> tuple[CBMMatrix, BuildReport]:
    """Compress binary matrix ``a`` into CBM format.

    Parameters
    ----------
    a:
        Square binary CSR matrix (e.g. a graph adjacency matrix).
    alpha:
        Edge-pruning threshold of Section V-C.  ``0`` (paper default)
        disables pruning and uses the MST construction; larger values
        discard marginal compression opportunities, shrinking the tree's
        dependency chains and raising parallelism.
    variant / diag / diag_left:
        ``"A"`` for the plain matrix, ``"AD"``/``"DAD"`` with a diagonal
        vector for the scaled factorisations (e.g. GCN normalisation),
        ``"D1AD2"`` with distinct left (``diag_left``) and right
        (``diag``) diagonals.
    method:
        Force ``"mst"`` or ``"mca"`` (test hook); ``"auto"`` picks MST for
        the symmetric alpha=0 graph and the arborescence otherwise.

    Returns the compressed matrix and a :class:`BuildReport`.
    """
    _validate_input(a)
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    t0 = time.perf_counter()
    g = candidate_edges(a, None if alpha == 0 else alpha)
    t1 = time.perf_counter()
    tree = _spanning_structure(g, method)
    t2 = time.perf_counter()
    delta = build_delta_matrix(a, tree)
    t3 = time.perf_counter()
    elapsed = t3 - t0
    stage_seconds = {
        "candidates": t1 - t0,
        "spanning": t2 - t1,
        "deltas": t3 - t2,
    }
    cbm = CBMMatrix(
        tree=tree,
        delta=delta,
        variant=Variant(variant),
        diag=diag,
        diag_left=diag_left,
        source_nnz=a.nnz,
        alpha=alpha,
    )
    report = BuildReport(
        seconds=elapsed,
        candidate_edges=g.num_edges,
        tree_edges=tree.num_tree_edges,
        roots=int(len(tree.roots)),
        total_deltas=delta.nnz,
        source_nnz=a.nnz,
        memory_bytes=cbm.memory_bytes(),
        compression_ratio=cbm.compression_ratio(),
        stage_seconds=stage_seconds,
    )
    return cbm, report


# ----------------------------------------------------------------------
# Clustered construction (paper future work, Section VIII)
# ----------------------------------------------------------------------

def cluster_rows_label_propagation(
    a: CSRMatrix, cluster_size: int, *, rounds: int = 5, seed: int = 0
) -> np.ndarray:
    """Community-aware clustering via label propagation, then size capping.

    Each node repeatedly adopts the most common label among its
    neighbours (ties broken by the smaller label); communities larger
    than ``cluster_size`` are chopped into signature-ordered chunks.
    Compared to :func:`cluster_rows` this respects graph communities, so
    rows that would compress against each other stay in one cluster —
    the better choice for the paper's future-work partitioned build on
    community-structured graphs.
    """
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
    n = a.shape[0]
    labels = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    order = np.arange(n)
    for _ in range(rounds):
        rng.shuffle(order)
        changed = 0
        for x in order:
            nbrs = a.row(int(x))
            if len(nbrs) == 0:
                continue
            counts: dict[int, int] = {}
            for lab in labels[nbrs]:
                counts[int(lab)] = counts.get(int(lab), 0) + 1
            best = min(counts, key=lambda lab: (-counts[lab], lab))
            if best != labels[x]:
                labels[x] = best
                changed += 1
        if changed == 0:
            break
    # Compact labels, then cap community sizes by signature-ordered chunking.
    _, labels = np.unique(labels, return_inverse=True)
    sig_order = np.lexsort((np.arange(n), labels))
    final = np.empty(n, dtype=np.int64)
    next_cluster = 0
    sorted_labels = labels[sig_order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    for lo, hi in zip(
        np.concatenate([[0], boundaries]), np.concatenate([boundaries, [n]]), strict=True
    ):
        members = sig_order[lo:hi]
        for k in range(0, len(members), cluster_size):
            final[members[k : k + cluster_size]] = next_cluster
            next_cluster += 1
    return final


def cluster_rows(a: CSRMatrix, cluster_size: int) -> np.ndarray:
    """Group rows into similarity clusters of roughly ``cluster_size``.

    Rows are sorted by a cheap similarity signature — (first neighbour,
    second neighbour, degree) — so rows with near-identical adjacency
    lists land in the same contiguous chunk, then chunked.  Empty rows go
    to cluster 0.  This is deliberately lightweight: the goal is bounding
    the candidate-pair explosion, not optimal partitioning.
    """
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
    n = a.shape[0]
    first = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    second = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    deg = a.row_nnz()
    has1 = deg >= 1
    first[has1] = a.indices[a.indptr[:-1][has1]]
    has2 = deg >= 2
    second[has2] = a.indices[a.indptr[:-1][has2] + 1]
    order = np.lexsort((deg, second, first))
    labels = np.empty(n, dtype=np.int64)
    labels[order] = np.arange(n) // cluster_size
    return labels


def build_clustered(
    a: CSRMatrix,
    *,
    alpha: int = 0,
    cluster_size: int = 1024,
    clustering: str = "signature",
    labels: np.ndarray | None = None,
    variant: str | Variant = Variant.A,
    diag: np.ndarray | None = None,
    workers: int = 1,
) -> tuple[CBMMatrix, BuildReport]:
    """Compress ``a`` cluster-by-cluster (future-work construction).

    Candidate pairs are only considered inside each cluster, so the peak
    memory of the overlap computation is bounded by the largest cluster's
    ``A_c @ A_cᵀ`` instead of the full matrix's — the fix the paper
    proposes for the 92 GiB Reddit blow-up.  Each cluster contributes at
    least one virtual-root branch, so parallelism rises; compression can
    only be equal or worse than the global build (tested property).

    ``clustering`` picks the partitioner: ``"signature"`` (cheap,
    neighbourhood-signature chunks) or ``"label_propagation"``
    (community-aware, better on clustered graphs); a precomputed
    ``labels`` array overrides both.

    ``workers > 1`` compresses clusters concurrently on a thread pool —
    the SpGEMM and sort kernels release the GIL, and clusters are
    independent, exactly the parallelism the paper's future work
    anticipates from partitioned construction.
    """
    _validate_input(a)
    t0 = time.perf_counter()
    if labels is not None:
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if len(labels) != a.shape[0]:
            raise ShapeError(
                f"labels has {len(labels)} entries for {a.shape[0]} rows"
            )
    elif clustering == "signature":
        labels = cluster_rows(a, cluster_size)
    elif clustering == "label_propagation":
        labels = cluster_rows_label_propagation(a, cluster_size)
    else:
        raise ValueError(
            f"unknown clustering {clustering!r}; expected 'signature' or "
            "'label_propagation'"
        )
    n = a.shape[0]
    parent = np.full(n, VIRTUAL, dtype=np.int64)
    weight = a.row_nnz().astype(np.int64)
    candidates_total = 0

    def compress_cluster(members: np.ndarray):
        sub = a.extract_rows(members)
        sub.data.fill(1)
        g = candidate_edges(sub, None if alpha == 0 else alpha)
        tree = _spanning_structure(g, "auto")
        return members, g.num_edges, tree

    groups = [
        members
        for c in np.unique(labels)
        if len(members := np.flatnonzero(labels == c)) >= 2
    ]
    if workers > 1 and len(groups) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(compress_cluster, groups))
    else:
        results = [compress_cluster(members) for members in groups]
    for members, num_edges, tree in results:
        candidates_total += num_edges
        local_parent = tree.parent
        real = local_parent != VIRTUAL
        parent[members[real]] = members[local_parent[real]]
        weight[members] = tree.weight
    tree = CompressionTree(parent=parent, weight=weight)
    delta = build_delta_matrix(a, tree)
    elapsed = time.perf_counter() - t0
    cbm = CBMMatrix(
        tree=tree,
        delta=delta,
        variant=Variant(variant),
        diag=diag,
        source_nnz=a.nnz,
        alpha=alpha,
    )
    report = BuildReport(
        seconds=elapsed,
        candidate_edges=candidates_total,
        tree_edges=tree.num_tree_edges,
        roots=int(len(tree.roots)),
        total_deltas=delta.nnz,
        source_nnz=a.nnz,
        memory_bytes=cbm.memory_bytes(),
        compression_ratio=cbm.compression_ratio(),
    )
    return cbm, report


