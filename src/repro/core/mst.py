"""Minimum spanning trees of the extended distance graph (Section III).

The paper's compression tree for the un-pruned (symmetric) distance graph
is any MST of the graph extended with the virtual node, rooted at the
virtual node.  Two from-scratch implementations are provided:

* :func:`kruskal_mst` — sort + union-find, O(E log E).  The production
  choice: edge sorting is vectorised and the union-find loop touches each
  candidate edge once.
* :func:`prim_mst` — lazy heap Prim, O(E log V).  Kept as an independent
  oracle; the test suite asserts both produce trees of identical weight.

Ties are broken in favour of virtual-node edges, implementing the paper's
"engineered to ignore" rule (Section IV): a compression opportunity whose
delta count equals the row's nnz is worthless, so the row is stored as a
plain adjacency list, which also shortens update-stage dependency chains.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.distance import DistanceGraph
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import CompressionError


class UnionFind:
    """Array-based disjoint sets with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of a and b; False when already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def _orient_from_virtual(n: int, chosen: list[tuple[int, int]], row_nnz, weights) -> CompressionTree:
    """Orient an undirected spanning tree away from the virtual node.

    ``chosen`` holds undirected (u, v) pairs with node id ``n`` standing
    for the virtual node.  Returns the parent array plus per-row delta
    counts.
    """
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n + 1)]
    for (u, v), w in zip(chosen, weights, strict=True):
        adj[u].append((v, w))
        adj[v].append((u, w))
    parent = np.full(n, VIRTUAL, dtype=np.int64)
    wout = np.zeros(n, dtype=np.int64)
    visited = np.zeros(n + 1, dtype=bool)
    stack = [n]
    visited[n] = True
    while stack:
        u = stack.pop()
        for v, w in adj[u]:
            if visited[v]:
                continue
            visited[v] = True
            parent[v] = VIRTUAL if u == n else u
            wout[v] = row_nnz[v] if u == n else w
            stack.append(v)
    if not visited[:n].all():
        raise CompressionError("spanning tree does not reach every row")
    return CompressionTree(parent=parent, weight=wout)


def kruskal_mst(g: DistanceGraph) -> CompressionTree:
    """MST of the virtual-node-extended distance graph via Kruskal.

    ``g`` must be undirected (``alpha=None`` construction).  Virtual edges
    (weight ``nnz(x)``) are implicit in ``g`` and added here.
    """
    if g.directed:
        raise CompressionError("kruskal_mst requires an undirected distance graph")
    n = g.n
    vsrc = np.full(n, n, dtype=np.int64)
    vdst = np.arange(n, dtype=np.int64)
    src = np.concatenate([g.src, vsrc])
    dst = np.concatenate([g.dst, vdst])
    w = np.concatenate([g.weight, g.row_nnz]).astype(np.int64)
    # Secondary key 0 for virtual edges, 1 for real ones: ties go virtual.
    is_real = np.concatenate(
        [np.ones(g.num_edges, dtype=np.int8), np.zeros(n, dtype=np.int8)]
    )
    order = np.lexsort((is_real, w))
    uf = UnionFind(n + 1)
    chosen: list[tuple[int, int]] = []
    wts: list[int] = []
    for k in order:
        u, v = int(src[k]), int(dst[k])
        if uf.union(u, v):
            chosen.append((u, v))
            wts.append(int(w[k]))
            if len(chosen) == n:
                break
    if len(chosen) != n:
        raise CompressionError(
            f"Kruskal selected {len(chosen)} edges, expected {n}"
        )
    return _orient_from_virtual(n, chosen, g.row_nnz, wts)


def prim_mst(g: DistanceGraph) -> CompressionTree:
    """MST via lazy-deletion heap Prim started at the virtual node.

    Independent oracle for :func:`kruskal_mst`; identical tie-breaking
    toward virtual edges (they enter the heap first at equal weight and
    heapq is stable on insertion order via the counter)."""
    if g.directed:
        raise CompressionError("prim_mst requires an undirected distance graph")
    n = g.n
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n + 1)]
    for s, d, w in zip(g.src, g.dst, g.weight, strict=True):
        adj[int(s)].append((int(d), int(w)))
        adj[int(d)].append((int(s), int(w)))
    for x in range(n):
        adj[n].append((x, int(g.row_nnz[x])))

    parent = np.full(n, VIRTUAL, dtype=np.int64)
    wout = np.zeros(n, dtype=np.int64)
    in_tree = np.zeros(n + 1, dtype=bool)
    in_tree[n] = True
    heap: list[tuple[int, int, int, int]] = []
    counter = 0
    for v, w in adj[n]:
        heap.append((w, counter, n, v))
        counter += 1
    heapq.heapify(heap)
    taken = 0
    while heap and taken < n:
        w, _, u, v = heapq.heappop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = True
        parent[v] = VIRTUAL if u == n else u
        wout[v] = w
        taken += 1
        for nxt, nw in adj[v]:
            if not in_tree[nxt]:
                counter += 1
                heapq.heappush(heap, (nw, counter, v, nxt))
    if taken != n:
        raise CompressionError(f"Prim reached {taken} of {n} rows")
    return CompressionTree(parent=parent, weight=wout)
