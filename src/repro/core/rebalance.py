"""Post-hoc compression-tree rebalancing: trade compression for parallelism.

The paper's alpha knob shapes the tree *at construction time*: larger
alpha prunes marginal edges, raising the virtual root's out-degree and
shortening dependency chains (Section V-C).  Rebalancing applies the same
trade-off *after* construction, without re-running the distance graph or
the spanning algorithm:

* :func:`cut_depth` bounds the tree depth to ``max_depth`` by re-rooting
  every row at a deeper level onto the virtual node (it simply stores its
  adjacency list again);
* :func:`split_branches` caps the largest branch size, cutting the
  shallowest rows of oversized branches first.

Both return a *new* :class:`CBMMatrix` whose delta matrix is patched only
on the cut rows, so rebalancing costs O(deltas of the cut rows) — cheap
enough to tune per deployment (e.g. per core count) from one stored
archive.  Property 1 is preserved: a cut row's new cost is exactly its
nnz, which the virtual edge already guaranteed as the worst case.
"""

from __future__ import annotations

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.core.deltas import reconstruct_rows
from repro.core.tree import VIRTUAL, CompressionTree
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive


def _rebuild_with_cuts(cbm: CBMMatrix, cut: np.ndarray) -> CBMMatrix:
    """Return a copy of ``cbm`` with the given rows re-rooted at virtual.

    The original binary rows are recovered by decompressing once; cut rows
    then store their full adjacency list (+1 values), everything else
    keeps its delta row verbatim.
    """
    if not cut.any():
        return cbm
    binary = reconstruct_rows(cbm.delta, cbm.tree)
    n = cbm.n
    new_parent = cbm.tree.parent.copy()
    new_weight = cbm.tree.weight.copy()
    new_parent[cut] = VIRTUAL
    new_weight[cut] = binary.row_nnz()[cut]

    indptr = np.zeros(n + 1, dtype=np.int64)
    chunks_idx = []
    chunks_val = []
    for x in range(n):
        if cut[x]:
            idx = np.asarray(binary.row(x))
            val = np.ones(len(idx), dtype=np.float32)
        else:
            lo, hi = cbm.delta.indptr[x], cbm.delta.indptr[x + 1]
            idx = cbm.delta.indices[lo:hi]
            val = cbm.delta.data[lo:hi]
        indptr[x + 1] = indptr[x] + len(idx)
        chunks_idx.append(idx)
        chunks_val.append(val)
    delta = CSRMatrix(
        indptr,
        np.concatenate(chunks_idx) if chunks_idx else np.empty(0, dtype=np.int64),
        np.concatenate(chunks_val) if chunks_val else np.empty(0, dtype=np.float32),
        cbm.shape,
        check=False,
    )
    tree = CompressionTree(parent=new_parent, weight=new_weight)
    return CBMMatrix(
        tree=tree,
        delta=delta,
        variant=cbm.variant,
        diag=cbm.diag,
        diag_left=cbm.diag_left,
        source_nnz=cbm.source_nnz,
        alpha=cbm.alpha,
    )


def cut_depth(cbm: CBMMatrix, max_depth: int) -> CBMMatrix:
    """Bound the compression-tree depth to ``max_depth``.

    Rows at depth exactly ``max_depth + 1`` become virtual roots (storing
    their adjacency lists); their subtrees keep their delta encoding but
    are now rooted one level higher, so the cut repeats down the tree
    until every row sits within the bound.
    """
    check_positive(max_depth, "max_depth")
    out = cbm
    # Each pass promotes one layer of violators; depth shrinks geometrically.
    while True:
        depth = out.tree.depth()
        over = depth > max_depth
        if not over.any():
            return out
        # Cut the shallowest violating layer: their subtrees re-root under them.
        cut = depth == max_depth + 1
        out = _rebuild_with_cuts(out, cut)


def split_branches(cbm: CBMMatrix, max_branch: int) -> CBMMatrix:
    """Cap the largest branch (virtual-root subtree) at ``max_branch`` rows.

    One bottom-up pass over the tree: subtree sizes are accumulated in
    reverse topological order, and whenever a node's subtree would exceed
    ``max_branch`` its largest child subtrees are promoted to virtual
    roots until it fits.  Every resulting branch has at most
    ``max_branch`` rows, and only the promoted rows pay their full
    adjacency list (Property 1 still holds).  This is the load-balancing
    analogue of the paper's observation that alpha raises parallelism:
    the update stage's critical path is bounded by the largest branch.
    """
    check_positive(max_branch, "max_branch")
    tree = cbm.tree
    n = tree.n
    parent = tree.parent
    children: list[list[int]] = [[] for _ in range(n)]
    for x in range(n):
        p = parent[x]
        if p != VIRTUAL:
            children[p].append(x)
    size = np.ones(n, dtype=np.int64)
    cut = np.zeros(n, dtype=bool)
    for x in tree.topological_order()[::-1]:
        x = int(x)
        kids = children[x]
        total = 1 + sum(int(size[c]) for c in kids if not cut[c])
        if total > max_branch:
            # Promote the largest child subtrees until this one fits.
            for c in sorted(
                (c for c in kids if not cut[c]), key=lambda c: -int(size[c])
            ):
                cut[c] = True
                total -= int(size[c])
                if total <= max_branch:
                    break
        size[x] = total
    return _rebuild_with_cuts(cbm, cut)
