"""The paper's contribution: the Compressed Binary Matrix (CBM) format.

Public entry points:

* :func:`repro.core.builder.build_cbm` / :class:`repro.core.cbm.CBMMatrix`
  — compress a binary adjacency matrix and multiply it with dense
  matrices (``AX``, ``ADX``, ``DADX``).
* :mod:`repro.core.distance` — row-similarity distance graph (Section III).
* :mod:`repro.core.mst` / :mod:`repro.core.arborescence` — the spanning
  structures that define the compression tree (MST for the undirected
  alpha=0 graph, Chu–Liu/Edmonds arborescence for pruned directed graphs).
* :mod:`repro.core.opcount` — scalar-operation and memory accounting
  backing Properties 1–3.
"""

from repro.core.arborescence import minimum_arborescence
from repro.core.bl2001 import build_bl2001
from repro.core.builder import BuildReport, build_cbm, build_clustered
from repro.core.cbm import CBMMatrix, Variant
from repro.core.distance import DistanceGraph, brute_force_distance_graph, candidate_edges
from repro.core.io import load_cbm, save_cbm
from repro.core.mst import kruskal_mst, prim_mst
from repro.core.opcount import (
    OpCount,
    cbm_memory_bytes,
    cbm_spmm_ops,
    csr_memory_bytes,
    csr_spmm_ops,
)
from repro.core.rebalance import cut_depth, split_branches
from repro.core.tree import VIRTUAL, CompressionTree
from repro.core.verify import VerifyReport, estimate_candidate_memory, verify_cbm

__all__ = [
    "CBMMatrix",
    "Variant",
    "BuildReport",
    "build_cbm",
    "build_clustered",
    "build_bl2001",
    "cut_depth",
    "split_branches",
    "load_cbm",
    "save_cbm",
    "VerifyReport",
    "verify_cbm",
    "estimate_candidate_memory",
    "DistanceGraph",
    "brute_force_distance_graph",
    "candidate_edges",
    "CompressionTree",
    "VIRTUAL",
    "kruskal_mst",
    "prim_mst",
    "minimum_arborescence",
    "OpCount",
    "cbm_memory_bytes",
    "cbm_spmm_ops",
    "csr_memory_bytes",
    "csr_spmm_ops",
]
