"""Programmatic correctness verification (paper Section VI-B).

The paper validates its kernels by multiplying each compressed adjacency
matrix with 50 random 500-column matrices and comparing against the CSR
baseline within rtol 1e-5.  :func:`verify_cbm` runs exactly that protocol
(configurable runs/columns/tolerance) and returns a structured report —
used by the test suite, the CLI ``verify`` command, and available to
downstream users who compress their own graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cbm import CBMMatrix, Variant
from repro.errors import ReproError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of a CBM-vs-CSR verification run."""

    passed: bool
    runs: int
    columns: int
    rtol: float
    max_relative_error: float
    structural_match: bool  # decompression reproduces the source exactly

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.runs} runs x {self.columns} cols, "
            f"max rel err {self.max_relative_error:.2e} (rtol {self.rtol}), "
            f"structural match: {self.structural_match}"
        )


def _baseline(cbm: CBMMatrix, a: CSRMatrix) -> CSRMatrix:
    """The weighted CSR matrix equivalent to ``cbm``'s variant of ``a``."""
    if cbm.variant is Variant.A:
        return a
    out = a.scale_columns(np.asarray(cbm.diag, dtype=np.float64))
    if cbm.variant in (Variant.DAD, Variant.D1AD2):
        out = out.scale_rows(np.asarray(cbm._row_diag(), dtype=np.float64))
    return out


def verify_cbm(
    cbm: CBMMatrix,
    a: CSRMatrix,
    *,
    runs: int = 10,
    columns: int = 100,
    rtol: float = 1e-4,
    seed: int = 0,
) -> VerifyReport:
    """Run the paper's random-matrix verification protocol.

    ``a`` is the *binary* source matrix the CBM was built from; variant
    scalings are applied to the baseline automatically.  The default
    tolerance is looser than the paper's 1e-5 because the extra update
    stage accumulates in float32 over longer chains.
    """
    check_positive(runs, "runs")
    check_positive(columns, "columns")
    rng = as_rng(seed)
    base = _baseline(cbm, a)
    max_err = 0.0
    ok = True
    for _ in range(runs):
        x = rng.random((a.shape[1], columns), dtype=np.float64).astype(np.float32)
        got = cbm.matmul(x)
        want = spmm(base, x)
        scale = np.maximum(np.abs(want), 1e-6)
        err = float(np.max(np.abs(got - want) / scale))
        max_err = max(max_err, err)
        if err > rtol:
            ok = False
    # Structural round-trip: decompress and compare the sparsity pattern.
    # A corrupted delta matrix may be unreconstructable (e.g. negative
    # deltas on a virtual-parent row); report that as a failure rather
    # than raising.
    try:
        back = cbm.tocsr()
        structural = (
            np.array_equal(back.indptr, base.indptr)
            and np.array_equal(back.indices, base.indices)
            and np.allclose(back.data, base.data, rtol=1e-5)
        )
    except (ReproError, ValueError):
        structural = False
    return VerifyReport(
        passed=ok and structural,
        runs=runs,
        columns=columns,
        rtol=rtol,
        max_relative_error=max_err,
        structural_match=structural,
    )


def estimate_candidate_memory(a: CSRMatrix) -> int:
    """Upper bound (bytes) on the ``A @ Aᵀ`` intermediate of compression.

    The paper's Section VIII reports the global construction exploding to
    92 GiB on Reddit because ``A·Aᵀ`` densifies.  The number of multiply
    results is ``Σ_j d_j²`` (each column j pairs its d_j incident rows);
    at 16 bytes per COO entry this bounds the SpGEMM intermediate.  Use it
    to decide between :func:`~repro.core.builder.build_cbm` and the
    memory-bounded :func:`~repro.core.builder.build_clustered`.
    """
    col_deg = np.bincount(a.indices, minlength=a.shape[1]).astype(np.float64)
    pairs = float(np.sum(col_deg * col_deg))
    return int(16 * pairs)
