"""Compression diagnostics: where do the savings come from?

Table II reports one ratio per graph; these utilities break a compressed
matrix down so a user can see *why* it compressed (or did not): per-row
savings distribution, the heaviest rows, depth/branch profiles, and the
estimated per-stage operation split of a multiplication.  Used by the
``compression_analysis`` example and exposed for downstream debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.core.tree import VIRTUAL


@dataclass(frozen=True)
class RowSavings:
    """Per-row compression outcome."""

    row: int
    nnz: int
    deltas: int

    @property
    def saved(self) -> int:
        return self.nnz - self.deltas


def row_savings(cbm: CBMMatrix, source_row_nnz: np.ndarray) -> list[RowSavings]:
    """Savings (nnz − deltas) for every row; virtual-rooted rows save 0."""
    source_row_nnz = np.asarray(source_row_nnz, dtype=np.int64)
    if len(source_row_nnz) != cbm.n:
        raise ValueError(
            f"source_row_nnz has {len(source_row_nnz)} entries for {cbm.n} rows"
        )
    deltas = np.diff(cbm.delta.indptr)
    return [
        RowSavings(row=x, nnz=int(source_row_nnz[x]), deltas=int(deltas[x]))
        for x in range(cbm.n)
    ]


def savings_histogram(cbm: CBMMatrix, source_row_nnz: np.ndarray, bins: int = 10) -> list[tuple[float, int]]:
    """Histogram of per-row relative savings (saved / nnz), as (edge, count).

    Rows with zero nnz are skipped; the top bin edge is 1.0 (row encoded
    for free, i.e. an exact duplicate of its reference row).
    """
    source_row_nnz = np.asarray(source_row_nnz, dtype=np.int64)
    deltas = np.diff(cbm.delta.indptr)
    nz = source_row_nnz > 0
    rel = (source_row_nnz[nz] - deltas[nz]) / source_row_nnz[nz]
    counts, edges = np.histogram(rel, bins=bins, range=(0.0, 1.0))
    return [(float(edges[i]), int(counts[i])) for i in range(bins)]


def top_savers(cbm: CBMMatrix, source_row_nnz: np.ndarray, k: int = 10) -> list[RowSavings]:
    """The k rows contributing the largest absolute savings."""
    rows = row_savings(cbm, source_row_nnz)
    return sorted(rows, key=lambda r: -r.saved)[:k]


def compression_profile(cbm: CBMMatrix, source_row_nnz: np.ndarray) -> dict:
    """One-call summary combining tree shape and savings statistics."""
    source_row_nnz = np.asarray(source_row_nnz, dtype=np.int64)
    deltas = np.diff(cbm.delta.indptr)
    saved = source_row_nnz - deltas
    compressed = cbm.tree.parent != VIRTUAL
    out = cbm.tree.stats()
    out.update(
        {
            "rows_compressed": int(compressed.sum()),
            "rows_stored_plain": int((~compressed).sum()),
            "total_saved_deltas": int(saved.sum()),
            "mean_relative_saving": float(
                np.mean(saved[source_row_nnz > 0] / source_row_nnz[source_row_nnz > 0])
            )
            if (source_row_nnz > 0).any()
            else 0.0,
            "zero_delta_rows": int(np.sum((deltas == 0) & (source_row_nnz > 0))),
        }
    )
    return out
