"""Delta-set extraction and the delta matrix A′ (paper Sections III & V-A).

Given a compression tree, row ``x`` is represented by the two delta sets

* ``Δ⁺(x) = row(x) \\ row(parent(x))`` — columns switched on, and
* ``Δ⁻(x) = row(parent(x)) \\ row(x)`` — columns switched off,

which the multiplication kernels consume as a single CSR *matrix of
deltas* ``A′`` whose x-th row is ``indicator(Δ⁺) − indicator(Δ⁻)``.  Rows
parented by the virtual node store their full adjacency list (Δ⁺ = row,
Δ⁻ = ∅).  For the AD and DAD variants the delta matrix is column-scaled
by the diagonal vector — see :func:`scale_delta_matrix`.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import CompressionError
from repro.sparse.csr import CSRMatrix


def delta_sets(a: CSRMatrix, tree: CompressionTree, x: int) -> tuple[np.ndarray, np.ndarray]:
    """(Δ⁺, Δ⁻) column-index arrays for row ``x`` under ``tree``.

    Rows are sorted-unique in CSR, so both differences are exact set
    operations.  Primarily a test/debug helper; bulk construction goes
    through :func:`build_delta_matrix`.
    """
    row_x = np.asarray(a.row(x))
    p = int(tree.parent[x])
    if p == VIRTUAL:
        return row_x.copy(), np.empty(0, dtype=np.int64)
    row_p = np.asarray(a.row(p))
    plus = np.setdiff1d(row_x, row_p, assume_unique=True)
    minus = np.setdiff1d(row_p, row_x, assume_unique=True)
    return plus, minus


def build_delta_matrix(a: CSRMatrix, tree: CompressionTree) -> CSRMatrix:
    """Construct the CSR matrix of deltas A′ for ``a`` under ``tree``.

    Row x holds +1 at Δ⁺ columns and −1 at Δ⁻ columns, with column indices
    sorted — ready for the sparse-dense multiplication stage.  Also
    verifies the per-row delta counts against ``tree.weight`` (they were
    computed from overlaps during construction; a mismatch means the
    distance graph lied).
    """
    n = a.shape[0]
    if tree.n != n:
        raise CompressionError(
            f"tree has {tree.n} rows but the matrix has {n}"
        )
    indptr = np.zeros(n + 1, dtype=np.int64)
    chunks_idx: list[np.ndarray] = []
    chunks_val: list[np.ndarray] = []
    for x in range(n):
        p = int(tree.parent[x])
        row_x = np.asarray(a.row(x))
        if p == VIRTUAL:
            idx = row_x
            val = np.ones(len(idx), dtype=np.float32)
        else:
            row_p = np.asarray(a.row(p))
            plus = np.setdiff1d(row_x, row_p, assume_unique=True)
            minus = np.setdiff1d(row_p, row_x, assume_unique=True)
            idx = np.concatenate([plus, minus])
            val = np.concatenate(
                [
                    np.ones(len(plus), dtype=np.float32),
                    -np.ones(len(minus), dtype=np.float32),
                ]
            )
            order = np.argsort(idx, kind="stable")
            idx, val = idx[order], val[order]
        if tree.weight[x] and len(idx) != tree.weight[x]:
            raise CompressionError(
                f"row {x}: expected {tree.weight[x]} deltas, extracted {len(idx)}"
            )
        indptr[x + 1] = indptr[x] + len(idx)
        chunks_idx.append(idx)
        chunks_val.append(val)
    indices = (
        np.concatenate(chunks_idx) if chunks_idx else np.empty(0, dtype=np.int64)
    )
    values = (
        np.concatenate(chunks_val) if chunks_val else np.empty(0, dtype=np.float32)
    )
    return CSRMatrix(indptr, indices, values, a.shape, check=False)


def scale_delta_matrix(delta: CSRMatrix, d: np.ndarray) -> CSRMatrix:
    """Column-scale A′ by the diagonal vector: the (AD)′ matrix of Section V-A.

    Same sparsity pattern as A′ — the paper leans on this to predict (and
    we confirm) that AX and ADX kernels cost the same.
    """
    return delta.scale_columns(np.asarray(d, dtype=delta.data.dtype))


def reconstruct_rows(delta: CSRMatrix, tree: CompressionTree) -> CSRMatrix:
    """Invert the compression: rebuild the original binary CSR from A′.

    Walks the tree in topological order applying delta sets to the parent's
    reconstructed column set.  Used by round-trip tests and by
    :meth:`repro.core.cbm.CBMMatrix.tocsr`.
    """
    n = tree.n
    rows: list[np.ndarray | None] = [None] * n
    for x in tree.topological_order():
        x = int(x)
        lo, hi = delta.indptr[x], delta.indptr[x + 1]
        idx = delta.indices[lo:hi]
        val = delta.data[lo:hi]
        plus = idx[val > 0]
        minus = idx[val < 0]
        p = int(tree.parent[x])
        if p == VIRTUAL:
            if len(minus):
                raise CompressionError(f"virtual-parent row {x} has negative deltas")
            rows[x] = plus.copy()
        else:
            base = rows[p]
            if base is None:
                raise CompressionError(f"row {x} visited before its parent {p}")
            merged = np.setdiff1d(
                np.union1d(base, plus), minus, assume_unique=False
            )
            rows[x] = merged
    indptr = np.zeros(n + 1, dtype=np.int64)
    for x in range(n):
        indptr[x + 1] = indptr[x] + len(rows[x])  # type: ignore[arg-type]
    indices = np.concatenate(rows) if n else np.empty(0, dtype=np.int64)
    data = np.ones(len(indices), dtype=np.float32)
    return CSRMatrix(indptr, indices, data, delta.shape, check=False)
