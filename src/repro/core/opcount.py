"""Scalar-operation and memory accounting (paper Properties 1–3).

The paper's performance argument is an operation-count argument: matrix
multiplication with CBM costs scalar operations proportional to the size
of the *compressed* representation.  Wall-clock on a noisy container
drifts; these counts do not, so every benchmark reports both.

Conventions (single precision values, 32-bit indices — the paper's setup):

* CSR SpMM with p right-hand columns: one multiply + one add per stored
  element per column → ``2 · nnz · p``.
* CBM SpMM: multiplication stage ``2 · nnz(A′) · p`` plus update stage
  ``p`` additions per tree edge, plus (DAD only) 2 extra flops per updated
  row element (Section V-A).
* ``S_CSR = 8·nnz + 4·(n+1)`` bytes — matches Table I exactly.
* ``S_CBM = 8·nnz(A′) + 4·(n+1) + 8·(tree edges)`` bytes — the delta
  matrix in CSR plus two 32-bit integers per compression-tree edge
  (Example 1 of the paper prices an edge at two integers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree import CompressionTree
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class OpCount:
    """Scalar-operation breakdown of one SpMM call."""

    multiply_stage: int
    update_stage: int

    @property
    def total(self) -> int:
        return self.multiply_stage + self.update_stage

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.multiply_stage + other.multiply_stage,
            self.update_stage + other.update_stage,
        )


def csr_spmm_ops(a: CSRMatrix, p: int) -> OpCount:
    """Scalar operations of the baseline CSR SpMM against p dense columns."""
    if p < 0:
        raise ValueError(f"p must be non-negative, got {p}")
    return OpCount(multiply_stage=2 * a.nnz * p, update_stage=0)


def cbm_spmm_ops(
    delta: CSRMatrix, tree: CompressionTree, p: int, *, variant: str = "A"
) -> OpCount:
    """Scalar operations of the CBM SpMM (multiply + update stages).

    ``variant`` is one of ``A``/``AD``/``DAD``/``D1AD2``; A and AD cost the same
    (identical sparsity in A′ vs (AD)′), DAD pays 2 extra flops per updated
    row element for the fused scaling of Eq. 6.
    """
    if p < 0:
        raise ValueError(f"p must be non-negative, got {p}")
    mul = 2 * delta.nnz * p
    edges = tree.num_tree_edges
    upd = edges * p
    if variant in ("DAD", "D1AD2"):
        upd += 2 * edges * p
    elif variant not in ("A", "AD"):
        raise ValueError(f"unknown variant {variant!r}; expected A, AD, or DAD")
    return OpCount(multiply_stage=mul, update_stage=upd)


def csr_rows_spmm_ops(nnz: int, p: int) -> OpCount:
    """CSR SpMM cost of a row range holding ``nnz`` stored elements.

    The per-row-block form of :func:`csr_spmm_ops`, used by the format
    router to price a candidate CSR-routed block without materialising
    the row slice.
    """
    if p < 0:
        raise ValueError(f"p must be non-negative, got {p}")
    if nnz < 0:
        raise ValueError(f"nnz must be non-negative, got {nnz}")
    return OpCount(multiply_stage=2 * int(nnz) * p, update_stage=0)


def cbm_rows_spmm_ops(
    delta_nnz: int, tree_edges: int, p: int, *, variant: str = "A"
) -> OpCount:
    """CBM SpMM cost of a row block with the given compressed sizes.

    The per-row-block form of :func:`cbm_spmm_ops`: ``delta_nnz`` counts
    the block's delta elements (rows whose parent falls outside the
    block are priced as roots, i.e. at their full nnz) and
    ``tree_edges`` counts only the parent links that stay inside the
    block.  Same variant conventions as :func:`cbm_spmm_ops`.
    """
    if p < 0:
        raise ValueError(f"p must be non-negative, got {p}")
    if delta_nnz < 0 or tree_edges < 0:
        raise ValueError("delta_nnz and tree_edges must be non-negative")
    mul = 2 * int(delta_nnz) * p
    upd = int(tree_edges) * p
    if variant in ("DAD", "D1AD2"):
        upd += 2 * int(tree_edges) * p
    elif variant not in ("A", "AD"):
        raise ValueError(f"unknown variant {variant!r}; expected A, AD, or DAD")
    return OpCount(multiply_stage=mul, update_stage=upd)


def csr_memory_bytes(a: CSRMatrix) -> int:
    """Paper-convention CSR footprint (see module docstring)."""
    return a.memory_bytes(value_bytes=4, index_bytes=4)


def cbm_memory_bytes(delta: CSRMatrix, tree: CompressionTree) -> int:
    """Paper-convention CBM footprint: delta CSR + 8 bytes per tree edge."""
    return delta.memory_bytes(value_bytes=4, index_bytes=4) + 8 * tree.num_tree_edges


def compression_ratio(a: CSRMatrix, delta: CSRMatrix, tree: CompressionTree) -> float:
    """``S_CSR / S_CBM`` — the headline metric of Tables II and V."""
    return csr_memory_bytes(a) / cbm_memory_bytes(delta, tree)
