"""The compression tree of the CBM format.

A compression tree assigns every row ``x`` a reference row ``parent[x]``;
the virtual node (the empty row) is encoded as :data:`VIRTUAL` (-1).  Rows
parented by the virtual node are stored as plain adjacency lists; every
other row is stored as deltas against its parent.

Beyond the parent array the class precomputes the orderings the
multiplication kernels need:

* :meth:`topological_order` — parents before children (update stage,
  Section IV).
* :meth:`levels` — edges grouped by depth; within one level no child is
  another child's parent, which is what lets the update stage run as a
  handful of vectorised batched row additions instead of one axpy per edge.
* :meth:`branches` — the branch decomposition of Section V-B: each subtree
  hanging off the virtual node is an independent unit of parallel work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import TreeError

VIRTUAL = -1
"""Parent value marking rows compressed against the virtual (empty) row."""


@dataclass
class CompressionTree:
    """Rooted forest over matrix rows; roots hang off the virtual node.

    ``parent[x]`` is the reference row of row ``x`` or :data:`VIRTUAL`.
    ``weight[x]`` is the number of deltas used to encode row ``x`` (for a
    virtual-parent row this equals its nnz).
    """

    parent: np.ndarray
    weight: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.parent = np.asarray(self.parent, dtype=np.int64).ravel()
        n = len(self.parent)
        if self.weight is None:
            self.weight = np.zeros(n, dtype=np.int64)
        else:
            self.weight = np.asarray(self.weight, dtype=np.int64).ravel()
            if len(self.weight) != n:
                raise TreeError(
                    f"weight has length {len(self.weight)}, expected {n}"
                )
        self.validate()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.parent)

    def validate(self) -> None:
        """Check parent indices and acyclicity; raise :class:`TreeError`."""
        n = self.n
        bad = (self.parent != VIRTUAL) & ((self.parent < 0) | (self.parent >= n))
        if np.any(bad):
            raise TreeError(f"parent indices out of range at rows {np.flatnonzero(bad)[:5]}")
        if np.any(self.parent == np.arange(n)):
            raise TreeError("a row cannot be its own parent")
        # Acyclicity via iterative depth computation; a cycle never resolves.
        if n and self.depth().max(initial=0) >= n + 1:
            raise TreeError("compression tree contains a cycle")

    def depth(self) -> np.ndarray:
        """Depth of each row: 0 for virtual-parent rows, parent depth + 1 else.

        Computed by repeated relaxation (each pass finalises one level), so a
        cycle shows up as depths exceeding n, which :meth:`validate` rejects.
        """
        n = self.n
        depth = np.where(self.parent == VIRTUAL, 0, -1).astype(np.int64)
        pending = np.flatnonzero(depth < 0)
        guard = 0
        while len(pending):
            pd = depth[self.parent[pending]]
            ready = pd >= 0
            depth[pending[ready]] = pd[ready] + 1
            pending = pending[~ready]
            guard += 1
            if guard > n + 1:
                # Remaining rows form cycles; mark them past n for validate().
                depth[pending] = n + 1
                break
        return depth

    # ------------------------------------------------------------------
    @cached_property
    def _depth(self) -> np.ndarray:
        return self.depth()

    @property
    def roots(self) -> np.ndarray:
        """Rows compressed directly against the virtual node."""
        return np.flatnonzero(self.parent == VIRTUAL)

    @property
    def tree_edges(self) -> np.ndarray:
        """Rows with a real (non-virtual) parent — the update-stage work."""
        return np.flatnonzero(self.parent != VIRTUAL)

    @property
    def num_tree_edges(self) -> int:
        return int(np.count_nonzero(self.parent != VIRTUAL))

    def topological_order(self) -> np.ndarray:
        """All rows ordered so every parent precedes its children."""
        return np.argsort(self._depth, kind="stable")

    def levels(self) -> list[np.ndarray]:
        """Non-root rows grouped by depth (level k children have level-(k-1) parents).

        ``levels()[0]`` is the set of rows at depth 1.  The update stage
        processes levels in order; inside a level, rows can be updated as
        one vectorised batch because their parents all live at strictly
        smaller depths.
        """
        d = self._depth
        maxd = int(d.max(initial=0))
        order = np.argsort(d, kind="stable")
        ds = d[order]
        out = []
        for k in range(1, maxd + 1):
            lo = np.searchsorted(ds, k, side="left")
            hi = np.searchsorted(ds, k, side="right")
            out.append(order[lo:hi])
        return out

    def branches(self) -> list[np.ndarray]:
        """Subtrees hanging off the virtual node, each in topological order.

        This is the unit of parallel work of Section V-B: there are no data
        dependencies across branches, so each list can be replayed by a
        different thread.  Rows include the branch root itself.
        """
        n = self.n
        # Union-find-free labelling: propagate root label down by depth.
        label = np.full(n, -1, dtype=np.int64)
        order = self.topological_order()
        for x in order:
            p = self.parent[x]
            label[x] = x if p == VIRTUAL else label[p]
        groups: dict[int, list[int]] = {}
        for x in order:
            groups.setdefault(int(label[x]), []).append(int(x))
        return [np.asarray(groups[r], dtype=np.int64) for r in sorted(groups)]

    def children_counts(self) -> np.ndarray:
        """Number of direct children of each row (virtual node excluded)."""
        counts = np.zeros(self.n, dtype=np.int64)
        real = self.parent[self.parent != VIRTUAL]
        np.add.at(counts, real, 1)
        return counts

    def total_weight(self) -> int:
        """Total number of deltas across all rows (tree cost incl. virtual edges)."""
        return int(self.weight.sum())

    def stats(self) -> dict:
        """Shape summary used by benchmarks and the parallel simulator."""
        d = self._depth
        branches = self.branches()
        return {
            "rows": self.n,
            "roots": int(len(self.roots)),
            "tree_edges": self.num_tree_edges,
            "max_depth": int(d.max(initial=0)),
            "mean_depth": float(d.mean()) if self.n else 0.0,
            "branches": len(branches),
            "largest_branch": max((len(b) for b in branches), default=0),
            "total_weight": self.total_weight(),
        }
