"""Distance-graph construction for CBM compression (paper Section III).

The distance graph has one node per matrix row plus a virtual node for the
empty row.  The weight of edge (y, x) is the Hamming distance between rows
y and x — the number of deltas needed to turn row y into row x:

    w(y, x) = nnz(x) + nnz(y) - 2 * |row(x) ∩ row(y)|

The virtual node connects to every row x with weight ``nnz(x)`` (compress
against the empty row = store the adjacency list).

Two construction strategies are provided:

* :func:`candidate_edges` — the production path.  Row overlaps come from
  one sparse ``A @ Aᵀ`` product (the paper's approach, Section VIII);
  pairs with zero overlap are never candidates because their edge can
  never beat the virtual edge.  Pruning (Section V-C) and the MST-safety
  filter are applied here, so downstream algorithms see a small edge set.
* :func:`brute_force_distance_graph` — an O(n² · deg) reference used by
  the test suite to validate the production path on small matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotBinaryError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_sparse_matmul


@dataclass
class DistanceGraph:
    """Candidate compression edges of a binary matrix.

    ``src``/``dst``/``weight`` are parallel arrays of directed edges
    y → x meaning "compress row x with respect to row y" at a cost of
    ``weight`` deltas.  Virtual-node edges are *implicit*: every row can
    always be compressed against the empty row at cost ``row_nnz[x]``.

    ``directed`` records whether pruning made the edge set asymmetric
    (requiring an arborescence instead of an MST).
    """

    n: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    row_nnz: np.ndarray
    directed: bool
    alpha: int | None

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def validate(self) -> None:
        """Sanity-check the invariants cheap enough to test in bulk."""
        assert len(self.src) == len(self.dst) == len(self.weight)
        if self.num_edges:
            assert self.src.min() >= 0 and self.src.max() < self.n
            assert self.dst.min() >= 0 and self.dst.max() < self.n
            assert np.all(self.weight >= 0)
            assert np.all(self.src != self.dst)


def _overlaps(a: CSRMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Off-diagonal entries of A @ Aᵀ as (x, y, overlap) triplets."""
    aat = sparse_sparse_matmul(a, a.transpose())
    coo = aat.tocoo()
    off = coo.rows != coo.cols
    return coo.rows[off], coo.cols[off], coo.data[off].astype(np.int64)


def candidate_edges(a: CSRMatrix, alpha: int | None = 0) -> DistanceGraph:
    """Build the pruned distance graph of binary matrix ``a``.

    ``alpha=None`` requests the un-pruned symmetric graph of Section III
    (alpha = 0 in the paper's experiments): all overlapping pairs survive a
    *safety filter* — an undirected edge is kept only when it can possibly
    appear in an MST of the virtual-node-extended graph, i.e. when
    ``w(x, y) < max(nnz(x), nnz(y))`` (cycle property through the virtual
    node).  This filter never changes the MST weight and keeps the edge
    count near-linear in practice.

    ``alpha >= 0`` applies the paper's pruning rule: a directed edge y → x
    survives only when compressing x against y *saves more than alpha
    deltas*, i.e. ``nnz(x) - w(y, x) > alpha``, equivalently
    ``2·overlap - nnz(y) > alpha``.  (The paper's Example 1 states the
    sign the other way round, but its measured behaviour — Table II's
    compression ratios falling and the virtual root's out-degree growing
    as alpha rises, with fewer candidate edges — pins this orientation.)
    The result is directed and must be spanned by a minimum-cost
    arborescence.
    """
    if not a.is_binary():
        raise NotBinaryError("CBM compression requires a binary matrix")
    n = a.shape[0]
    row_nnz = a.row_nnz().astype(np.int64)
    xs, ys, ov = _overlaps(a)
    # weight of edge y -> x (same as x -> y):
    w = row_nnz[xs] + row_nnz[ys] - 2 * ov
    if alpha is None:
        # One record per undirected pair (src > dst by convention).
        keep = (w < np.maximum(row_nnz[xs], row_nnz[ys])) & (ys > xs)
        return DistanceGraph(
            n=n,
            src=ys[keep],
            dst=xs[keep],
            weight=w[keep],
            row_nnz=row_nnz,
            directed=False,
            alpha=None,
        )
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0 or None, got {alpha}")
    # Pruning rule, Section V-C: keep y -> x iff it saves > alpha deltas.
    keep = (2 * ov - row_nnz[ys]) > alpha
    return DistanceGraph(
        n=n,
        src=ys[keep],
        dst=xs[keep],
        weight=w[keep],
        row_nnz=row_nnz,
        directed=True,
        alpha=int(alpha),
    )


def brute_force_distance_graph(a: CSRMatrix, alpha: int | None = 0) -> DistanceGraph:
    """Reference construction comparing every row pair explicitly.

    Quadratic in n — test-only.  Produces the same edge set as
    :func:`candidate_edges` (up to ordering) including the safety filter /
    pruning rule, so the two can be compared edge-for-edge.
    """
    if not a.is_binary():
        raise NotBinaryError("CBM compression requires a binary matrix")
    n = a.shape[0]
    row_nnz = a.row_nnz().astype(np.int64)
    rows = [np.asarray(a.row(i)) for i in range(n)]
    src, dst, wts = [], [], []
    for x in range(n):
        for y in range(n):
            if x == y:
                continue
            ov = len(np.intersect1d(rows[x], rows[y], assume_unique=True))
            if ov == 0:
                continue
            w = int(row_nnz[x] + row_nnz[y] - 2 * ov)
            if alpha is None:
                if x < y and w < max(row_nnz[x], row_nnz[y]):
                    src.append(y)
                    dst.append(x)
                    wts.append(w)
            else:
                if 2 * ov - row_nnz[y] > alpha:
                    src.append(y)
                    dst.append(x)
                    wts.append(w)
    return DistanceGraph(
        n=n,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        weight=np.asarray(wts, dtype=np.int64),
        row_nnz=row_nnz,
        directed=alpha is not None,
        alpha=alpha,
    )
