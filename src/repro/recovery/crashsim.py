"""Kill-9 chaos harness: prove the persistence tier crash-safe.

The harness runs real writer workloads in a *subprocess* and sends it an
uncatchable ``SIGKILL`` at a randomized durability sync point — the hook
installed via :func:`repro.recovery.atomic.set_sync_hook` fires at every
protocol step of every :func:`~repro.recovery.atomic.atomic_write`
(``wrote`` / ``replace`` / ``renamed``) and at the store's ``commit``
marker write, so process death lands in every window: mid-payload,
between payload durability and commit, mid-``os.replace`` of the
manifest, and between the rename and the directory sync.

After each kill the parent re-opens the store, runs
:meth:`~repro.recovery.store.GenerationStore.recover`, and asserts the
durability invariants:

1. **No committed generation is ever lost** — every generation the
   worker announced as committed (after its commit returned) is still
   present and validates.
2. **latest() is never corrupt** — after recovery the newest committed
   generation loads end-to-end (``load_cbm`` for archives,
   ``load_checkpoint`` for training state).
3. **All torn temp files are quarantined** — no ``*.tmp-atomic`` debris
   survives outside ``quarantine/``.
4. **Recovery time is bounded.**

``--break-protocol`` deliberately runs a *buggy* writer that puts the
commit marker before the payload (the classic torn-write bug this tier
exists to prevent); the harness must then detect a lost committed
generation and exit nonzero — proving the invariant checks have teeth.

Surfaced as ``repro crash-soak`` (see :mod:`repro.cli`); the worker
entry point is this module itself::

    python -m repro.recovery.crashsim --worker archive --root DIR \
        --crash-at 5 --seed 1
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.recovery import atomic
from repro.recovery.store import GenerationStore

WORKLOADS = ("archive", "trainer", "multi", "streaming")

#: Sync points per store commit: one payload ``atomic_write`` (3) + the
#: ``commit`` marker point (1) + the manifest ``atomic_write`` (3).
_POINTS_PER_COMMIT = 7


# ---------------------------------------------------------------------------
# Worker side (runs in the subprocess that gets killed)
# ---------------------------------------------------------------------------

def _install_kill_hook(crash_at: int) -> None:
    """SIGKILL ourselves at the ``crash_at``-th durability sync point."""
    state = {"count": 0}

    def hook(point: str, path: str) -> None:
        state["count"] += 1
        if state["count"] == crash_at:
            sys.stdout.flush()
            os.kill(os.getpid(), signal.SIGKILL)

    atomic.set_sync_hook(hook)


class _AnnouncingStore(GenerationStore):
    """Store that reports each commit on stdout *after* it is durable.

    The parent treats every announced generation as a durability
    promise: if recovery cannot validate it later, the harness flags a
    lost committed generation.
    """

    def _commit(self, txn):
        gen = super()._commit(txn)
        print(f"COMMITTED {gen.index}", flush=True)
        return gen


def _tiny_adjacency():
    import numpy as np

    from repro.sparse.convert import from_dense

    rng = np.random.default_rng(11)
    d = (rng.random((24, 24)) < 0.25).astype(np.float32)
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0.0)
    return from_dense(d)


def _worker_archive(store: GenerationStore, iterations: int, seed: int) -> None:
    from repro.core.builder import build_cbm
    from repro.core.io import save_cbm

    cbm, _ = build_cbm(_tiny_adjacency(), alpha=2)
    for _ in range(iterations):
        with store.begin(meta={"kind": "cbm-archive"}) as txn:
            save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)


def _worker_trainer(store: GenerationStore, iterations: int, seed: int) -> None:
    import numpy as np

    from repro.gnn.adjacency import make_operator
    from repro.gnn.gcn import GCN
    from repro.gnn.train import train_gcn

    a = _tiny_adjacency()
    rng = np.random.default_rng(seed)
    x = rng.random((a.shape[0], 6)).astype(np.float32)
    labels = rng.integers(0, 3, a.shape[0])
    mask = np.ones(a.shape[0], dtype=bool)
    model = GCN([6, 6, 3], requires_grad=True, seed=seed)
    train_gcn(
        model,
        make_operator(a, "csr"),
        x,
        labels,
        train_mask=mask,
        epochs=iterations,
        checkpoint_every=1,
        checkpoint_store=store,
        resume_from="latest",
    )


def _worker_multi(store: GenerationStore, iterations: int, seed: int) -> None:
    """Several payloads per generation — stresses the multi-file commit."""
    import numpy as np

    rng = np.random.default_rng(seed)
    for _ in range(iterations):
        with store.begin(meta={"kind": "bundle"}) as txn:
            for name in ("part-a.json", "part-b.json", "part-c.json"):
                with atomic.atomic_write(
                    txn.path(name), mode="w", encoding="utf-8"
                ) as fh:
                    json.dump({"values": rng.integers(0, 100, 32).tolist()}, fh)


def _worker_streaming(
    store: GenerationStore, iterations: int, seed: int, graph: str | None = None
) -> None:
    """The streaming rebuilder's commit path: patch, recompress, commit.

    Each iteration applies one random edge batch to a
    :class:`~repro.streaming.MutableAdjacency`, rebuilds a fresh CBM
    from the patched adjacency, and commits it as a new generation
    (``graph_version`` in the manifest meta records which mutation step
    the artifact represents).  Sync-point span per iteration is the same
    7 as the archive workload: one atomic payload write (3) + the commit
    marker (1) + the manifest write (3) — a kill anywhere in between
    must leave the previous generation as the loadable latest.
    """
    from repro.core.builder import build_cbm
    from repro.core.io import load_cbm, save_cbm
    from repro.streaming.mutable import EdgeBatch, MutableAdjacency

    if graph is not None:
        cbm0 = load_cbm(graph)
        a = cbm0.tocsr()
    else:
        a = _tiny_adjacency()
    mutable = MutableAdjacency.from_graph(a)
    for i in range(iterations):
        _, _, source = mutable.snapshot()
        batch = EdgeBatch.random(
            source, inserts=3, deletes=2, seed=seed * 1009 + i
        )
        mutable.apply(batch)
        version, _, patched_source = mutable.snapshot()
        fresh, _ = build_cbm(patched_source, alpha=0)
        with store.begin(
            meta={"kind": "cbm-archive", "streaming": True, "graph_version": version}
        ) as txn:
            save_cbm(txn.path("adjacency.npz", kind="cbm"), fresh)


def _worker_broken_protocol(store: GenerationStore, iterations: int, seed: int) -> None:
    """Deliberately buggy writer: commit marker BEFORE the payload.

    Announces the generation as committed, then writes the payload
    non-atomically with a sync point in the middle — a kill there leaves
    a committed manifest pointing at torn bytes, which the harness must
    detect as a lost committed generation.
    """
    import zlib

    payload = (b"0123456789abcdef" * 512)
    for _ in range(iterations):
        txn = store.begin(meta={"kind": "broken"})
        manifest = {
            "store_format": 1,
            "generation": txn.index,
            "committed": True,
            "meta": txn.meta,
            "files": {
                "blob.bin": {"bytes": len(payload), "crc32": zlib.crc32(payload)}
            },
        }
        with open(txn.dir / "MANIFEST.json", "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        print(f"COMMITTED {txn.index}", flush=True)
        half = len(payload) // 2
        with open(txn.dir / "blob.bin", "wb") as fh:
            fh.write(payload[:half])
            fh.flush()
            atomic._checkpoint("buggy-mid-payload", str(txn.dir / "blob.bin"))
            fh.write(payload[half:])
        txn._open = False  # bypass the safe commit entirely


def run_worker(
    workload: str,
    root: str,
    *,
    crash_at: int,
    seed: int,
    iterations: int,
    break_protocol: bool = False,
    graph: str | None = None,
) -> None:
    """Subprocess entry point: run the workload until killed (or done)."""
    _install_kill_hook(crash_at)
    store = _AnnouncingStore(root, audit_archives=False)
    if break_protocol:
        _worker_broken_protocol(store, iterations, seed)
    elif workload == "archive":
        _worker_archive(store, iterations, seed)
    elif workload == "trainer":
        _worker_trainer(store, iterations, seed)
    elif workload == "multi":
        _worker_multi(store, iterations, seed)
    elif workload == "streaming":
        _worker_streaming(store, iterations, seed, graph=graph)
    else:
        raise SystemExit(f"unknown workload {workload!r}")
    print("DONE", flush=True)


# ---------------------------------------------------------------------------
# Parent side (spawns, kills, recovers, asserts)
# ---------------------------------------------------------------------------

@dataclass
class TrialResult:
    """One spawn/kill/recover cycle and the invariants it checked."""

    workload: str
    crash_at: int
    killed: bool = False
    announced: list = field(default_factory=list)
    kept: list = field(default_factory=list)
    quarantined: int = 0
    stray_tmp: int = 0
    recovery_s: float = 0.0
    violations: list = field(default_factory=list)
    root: str | None = None  # preserved store root of a violating trial

    @property
    def ok(self) -> bool:
        return not self.violations


def _find_tmp_debris(root: str) -> list[str]:
    """Every ``*.tmp-atomic`` file under ``root`` outside quarantine/."""
    debris = []
    for dirpath, dirnames, filenames in os.walk(root):
        if os.path.basename(dirpath) == "quarantine":
            dirnames[:] = []
            continue
        dirnames[:] = [d for d in dirnames if d != "quarantine"]
        debris.extend(
            os.path.join(dirpath, f) for f in filenames if atomic.is_tmp_debris(f)
        )
    return debris


def _check_latest_loads(store: GenerationStore, workload: str) -> str | None:
    """Load the newest committed generation end-to-end; return an error."""
    gen = store.latest()
    if gen is None:
        return None
    try:
        if workload == "trainer":
            from repro.gnn.train import CHECKPOINT_PAYLOAD, load_checkpoint

            load_checkpoint(gen.file(CHECKPOINT_PAYLOAD))
        elif workload in ("archive", "streaming"):
            from repro.core.io import load_cbm

            load_cbm(gen.file("adjacency.npz"))
        else:
            gen.verify()
    except Exception as exc:  # noqa: BLE001 - any load failure is the finding
        return f"latest() generation {gen.index} failed to load: {exc}"
    return None


def run_trial(
    workload: str,
    *,
    crash_at: int,
    seed: int,
    iterations: int = 3,
    root: str | None = None,
    break_protocol: bool = False,
    recovery_budget_s: float = 10.0,
    worker_timeout_s: float = 120.0,
    graph: str | None = None,
) -> TrialResult:
    """Spawn one worker, let the hook SIGKILL it, recover, assert.

    A root created by the trial itself is deleted when every invariant
    holds and preserved (``result.root``) when any is violated, so a
    failing soak leaves its evidence on disk.  ``graph`` (streaming
    workload only) points the worker at a saved CBM archive to mutate,
    so a parent soak can crash rebuilds of *its own* live graph.
    """
    owned = root is None
    if owned:
        root = tempfile.mkdtemp(prefix="crashsim-")
    result = TrialResult(workload=workload, crash_at=crash_at)
    try:
        return _run_trial_inner(
            result,
            workload,
            root,
            crash_at=crash_at,
            seed=seed,
            iterations=iterations,
            break_protocol=break_protocol,
            recovery_budget_s=recovery_budget_s,
            worker_timeout_s=worker_timeout_s,
            graph=graph,
        )
    finally:
        if owned:
            if result.violations:
                result.root = root
            else:
                import shutil

                shutil.rmtree(root, ignore_errors=True)


def _run_trial_inner(
    result: TrialResult,
    workload: str,
    root: str,
    *,
    crash_at: int,
    seed: int,
    iterations: int,
    break_protocol: bool,
    recovery_budget_s: float,
    worker_timeout_s: float,
    graph: str | None = None,
) -> TrialResult:
    cmd = [
        sys.executable,
        "-m",
        "repro.recovery.crashsim",
        "--worker",
        workload,
        "--root",
        root,
        "--crash-at",
        str(crash_at),
        "--seed",
        str(seed),
        "--iterations",
        str(iterations),
    ]
    if break_protocol:
        cmd.append("--break-protocol")
    if graph is not None:
        cmd.extend(["--graph", graph])
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=worker_timeout_s, env=env
        )
    except subprocess.TimeoutExpired:
        result.violations.append(f"worker hung past {worker_timeout_s}s and was killed")
        return result
    result.killed = proc.returncode == -signal.SIGKILL
    if not result.killed and proc.returncode != 0:
        result.violations.append(
            f"worker failed with exit {proc.returncode} (not a kill): "
            f"{proc.stderr.strip()[-400:]}"
        )
        return result
    for line in proc.stdout.splitlines():
        if line.startswith("COMMITTED "):
            result.announced.append(int(line.split()[1]))

    store = GenerationStore(root)
    report = store.recover()
    result.kept = list(report.kept)
    result.quarantined = len(report.quarantined)
    result.stray_tmp = report.stray_tmp
    result.recovery_s = report.elapsed_s

    lost = sorted(set(result.announced) - set(result.kept))
    if lost:
        result.violations.append(
            f"committed generation(s) {lost} lost after recovery "
            f"(announced {result.announced}, kept {result.kept})"
        )
    for gen in store.generations():
        try:
            gen.verify()
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            result.violations.append(
                f"generation {gen.index} survived recovery but fails "
                f"verification: {exc}"
            )
    load_error = _check_latest_loads(store, "broken" if break_protocol else workload)
    if load_error is not None:
        result.violations.append(load_error)
    debris = _find_tmp_debris(root)
    if debris:
        result.violations.append(
            f"torn temp file(s) not quarantined: {[os.path.basename(d) for d in debris]}"
        )
    if report.elapsed_s > recovery_budget_s:
        result.violations.append(
            f"recovery took {report.elapsed_s:.3f}s > budget {recovery_budget_s:.3f}s"
        )
    return result


def run_soak(
    *,
    trials: int = 60,
    seed: int = 0,
    workloads: tuple = WORKLOADS,
    iterations: int = 3,
    break_protocol: bool = False,
    recovery_budget_s: float = 10.0,
    progress=None,
) -> dict:
    """Run ``trials`` randomized kill-9 cycles; return the full report.

    Each trial gets a fresh store root, a workload drawn round-robin,
    and a crash point drawn uniformly over the workload's sync-point
    span (plus a margin so some trials complete un-killed and exercise
    the clean path).
    """
    import random

    rng = random.Random(seed)
    per_workload: dict[str, dict] = {
        w: {"trials": 0, "kills": 0, "violations": 0} for w in workloads
    }
    violations: list = []
    killed = commits = quarantined = stray = 0
    max_recovery_s = 0.0
    crash_points_hit = 0
    t0 = time.perf_counter()
    for k in range(trials):
        workload = workloads[k % len(workloads)]
        if break_protocol:
            # The buggy writer has one sync point per iteration, between
            # the premature commit marker and the payload bytes — always
            # kill inside that window so every trial demonstrates the bug.
            crash_at = rng.randint(1, iterations)
        else:
            span = _POINTS_PER_COMMIT * iterations
            if workload == "multi":
                span = (3 * 3 + 4) * iterations  # 3 payload writes + commit + manifest
            crash_at = rng.randint(1, span + 3)  # margin: some trials finish clean
        trial = run_trial(
            workload,
            crash_at=crash_at,
            seed=rng.randint(0, 2**31 - 1),
            iterations=iterations,
            break_protocol=break_protocol,
            recovery_budget_s=recovery_budget_s,
        )
        per_workload[workload]["trials"] += 1
        if trial.killed:
            killed += 1
            crash_points_hit += 1
            per_workload[workload]["kills"] += 1
        commits += len(trial.announced)
        quarantined += trial.quarantined
        stray += trial.stray_tmp
        max_recovery_s = max(max_recovery_s, trial.recovery_s)
        if trial.violations:
            per_workload[workload]["violations"] += len(trial.violations)
            where = f"[{workload} crash_at={trial.crash_at}"
            if trial.root:
                where += f" root={trial.root}"
            violations.extend(f"{where}] {v}" for v in trial.violations)
        if progress is not None:
            progress(k + 1, trials, trial)
    return {
        "benchmark": "crash_soak",
        "trials": trials,
        "seed": seed,
        "iterations_per_trial": iterations,
        "break_protocol": break_protocol,
        "killed": killed,
        "clean_exits": trials - killed,
        "commits_observed": commits,
        "generations_quarantined": quarantined,
        "stray_tmp_quarantined": stray,
        "max_recovery_s": max_recovery_s,
        "recovery_budget_s": recovery_budget_s,
        "workloads": per_workload,
        "violations": violations,
        "elapsed_s": time.perf_counter() - t0,
        "ok": not violations,
    }


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--worker", choices=WORKLOADS, help="run as the killable worker")
    ap.add_argument("--root", help="store root (worker mode)")
    ap.add_argument("--crash-at", type=int, default=0, help="sync point to die at")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--iterations", type=int, default=3)
    ap.add_argument("--break-protocol", action="store_true")
    ap.add_argument("--graph", default=None,
                    help="CBM archive to mutate (streaming workload)")
    args = ap.parse_args(argv)
    if args.worker:
        run_worker(
            args.worker,
            args.root,
            crash_at=args.crash_at,
            seed=args.seed,
            iterations=args.iterations,
            break_protocol=args.break_protocol,
            graph=args.graph,
        )
        return 0
    ap.error("this module is the worker entry point; use `repro crash-soak` to drive it")
    return 2  # pragma: no cover - argparse exits above


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
