"""Crash-safe persistence tier: atomic writes, journaled generations,
and kill-9 recovery.

The reliability layers of PR2–PR4 made the *in-process* paths robust;
this package makes the *on-disk* state hold up under real process death:

* :mod:`repro.recovery.atomic` — :func:`atomic_write`, the
  temp-file + fsync + ``os.replace`` + directory-fsync primitive every
  persistent artifact saver now writes through, with an injectable sync
  hook so the crash harness can kill at every protocol point.
* :mod:`repro.recovery.store` — :class:`GenerationStore`, a journaled
  directory layout whose fsynced ``MANIFEST.json`` (per-file CRC table,
  written last) is the commit marker; startup :meth:`~GenerationStore.recover`
  re-validates candidates (CRC + static artifact audit) and quarantines
  torn or uncommitted state instead of deleting it.
* :mod:`repro.recovery.crashsim` — the kill-9 chaos harness behind
  ``repro crash-soak``: subprocess workloads SIGKILLed at randomized
  sync points (including mid-``os.replace``), then recovery invariants
  asserted — no committed generation lost, ``latest()`` never corrupt,
  all torn temp files quarantined, recovery time bounded.

See ``docs/ARCHITECTURE.md`` ("Durability & recovery") for the commit
protocol and quarantine semantics.
"""

from repro.recovery.atomic import atomic_write, fsync_dir, fsync_file, set_sync_hook
from repro.recovery.store import (
    Generation,
    GenerationStore,
    GenerationTxn,
    RecoveryReport,
)

__all__ = [
    "Generation",
    "GenerationStore",
    "GenerationTxn",
    "RecoveryReport",
    "atomic_write",
    "fsync_dir",
    "fsync_file",
    "set_sync_hook",
]
