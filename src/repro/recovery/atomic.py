"""Atomic, durable file replacement — the write primitive under every
persistent artifact.

A bare ``open(path, "w")`` / ``np.savez_compressed(path)`` torn by a
crash (power loss, ``kill -9``, OOM kill) leaves *the destination itself*
half-written: the CRC layer in :mod:`repro.core.io` detects the damage
only after it has already destroyed the previous good version.
:func:`atomic_write` removes that window entirely with the classic
four-step protocol:

1. write to a temporary file **in the same directory** (same filesystem,
   so the final rename cannot degrade to a copy);
2. ``flush`` + ``fsync`` the temp file so its bytes are durable;
3. ``os.replace`` the temp file onto the destination — atomic on POSIX
   and NTFS, so readers see either the old file or the new one, never a
   mix;
4. ``fsync`` the containing directory so the rename itself survives a
   crash.

A crash at any point before step 3 leaves the destination untouched plus
at most one stray ``*.tmp-*`` file (which
:meth:`repro.recovery.store.GenerationStore.recover` quarantines); a
crash after step 3 leaves the complete new file.

Testability: the module exposes an injectable *sync hook*
(:func:`set_sync_hook`) invoked at the named protocol points
(``"wrote"``, ``"replace"``, ``"renamed"``).  The kill-9 harness
(:mod:`repro.recovery.crashsim`) installs a hook that ``SIGKILL``\\ s the
process at a randomized point, driving real process death into every
window of the protocol — including between the rename and the directory
sync.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import Callable, Iterator

#: Suffix shared by every in-flight temp file, so recovery can recognise
#: (and quarantine) the debris of a torn write.
TMP_SUFFIX = ".tmp-atomic"

#: Protocol points at which the sync hook fires, in order.
SYNC_POINTS = ("wrote", "replace", "renamed")

_sync_hook: Callable[[str, str], None] | None = None


def set_sync_hook(hook: Callable[[str, str], None] | None) -> Callable[[str, str], None] | None:
    """Install ``hook(point, path)`` to be called at each protocol point.

    Returns the previously installed hook (None if there was none) so
    tests can restore it.  Pass ``None`` to uninstall.
    """
    global _sync_hook
    previous = _sync_hook
    _sync_hook = hook
    return previous


def _checkpoint(point: str, path: str) -> None:
    if _sync_hook is not None:
        _sync_hook(point, path)


def fsync_dir(path: str | os.PathLike) -> None:
    """``fsync`` a directory so a just-completed rename inside it is durable.

    Platforms whose directory handles reject ``fsync`` (e.g. Windows)
    silently skip — the rename is still atomic there, just not yet
    guaranteed durable, which matches the best those platforms offer.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def is_tmp_debris(name: str) -> bool:
    """Whether a file name is the leftover of a torn :func:`atomic_write`."""
    return TMP_SUFFIX in name


@contextmanager
def atomic_write(
    path: str | os.PathLike,
    *,
    mode: str = "wb",
    encoding: str | None = None,
    durable: bool = True,
) -> Iterator:
    """Context manager yielding a file object whose contents replace
    ``path`` atomically on clean exit.

    On an exception inside the block the destination is untouched and
    the temp file is removed.  ``mode`` must be a write mode (``"wb"``
    or ``"w"``); ``encoding`` applies to text mode.  ``durable=False``
    skips the two fsyncs (step 2 and 4) — the replacement is still
    atomic with respect to concurrent readers, but not guaranteed to
    survive power loss; use it only for derived/report files.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write requires a fresh write mode, got {mode!r}")
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            _checkpoint("wrote", path)
            if durable:
                os.fsync(fh.fileno())
        _checkpoint("replace", path)
        os.replace(tmp, path)
        _checkpoint("renamed", path)
        if durable:
            fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fsync_file(path: str | os.PathLike) -> None:
    """``fsync`` an already-written file's bytes (read-only open).

    Used by the store's commit step to guarantee every payload is
    durable *before* the manifest — the commit marker — lands.
    """
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
