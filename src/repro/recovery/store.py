"""Journaled generation store — crash-safe directory-level persistence.

A :class:`GenerationStore` owns one root directory and persists *whole
artifact sets* ("generations") with an explicit commit point, so the
serving and training layers always have a last-known-good version to
fall back to:

.. code-block:: text

    root/
      gen-000001/                committed generation (immutable)
        adjacency.npz
        MANIFEST.json            <- the commit marker, written last
      gen-000002/                crash debris: no MANIFEST -> uncommitted
        adjacency.npz.k3j2.tmp-atomic
      quarantine/                corrupt/uncommitted state, preserved
        gen-000002--uncommitted/
        QUARANTINE.log

Commit protocol (:meth:`GenerationStore.begin`):

1. a fresh ``gen-NNNNNN/`` directory is created; the caller writes its
   payload files into it (through :func:`repro.recovery.atomic_write`
   -backed savers);
2. on clean exit of the transaction every payload is fsynced, its size
   and CRC-32 recorded, and the directory fsynced;
3. ``MANIFEST.json`` — carrying ``"committed": true`` and the per-file
   checksum table — is written **last**, itself atomically and durably.

A generation without a valid, committed manifest does not exist as far
as :meth:`latest` is concerned.  Killing the process at *any* point
therefore leaves the store in one of exactly two observable states: the
new generation fully committed, or the previous generation still latest
plus some debris that :meth:`recover` sweeps into ``quarantine/``
(never deleted — torn state is evidence, not garbage).

Startup recovery (:meth:`recover`) re-validates every candidate
generation — manifest parse, payload presence, size, CRC-32, and (for
CBM archives) the :mod:`repro.staticcheck` artifact audit — and
quarantines anything that fails, with the reason logged.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IntegrityError, RecoveryError
from repro.recovery.atomic import (
    _checkpoint,
    atomic_write,
    fsync_dir,
    fsync_file,
    is_tmp_debris,
)

MANIFEST_NAME = "MANIFEST.json"
_GEN_RE = re.compile(r"^gen-(\d{6,})$")
_STORE_FORMAT = 1


def _crc32_file(path: Path, chunk: int = 1 << 20) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


@dataclass
class Generation:
    """One committed artifact set: its index, directory, and manifest."""

    index: int
    path: Path
    manifest: dict

    @property
    def files(self) -> dict:
        return self.manifest.get("files", {})

    @property
    def meta(self) -> dict:
        return self.manifest.get("meta", {})

    def file(self, name: str) -> Path:
        """Path of a payload listed in the manifest."""
        if name not in self.files:
            raise RecoveryError(
                f"generation {self.index} has no payload {name!r} "
                f"(manifest lists {sorted(self.files)})"
            )
        return self.path / name

    def verify(self) -> None:
        """Re-check every payload against the manifest's size/CRC table.

        Raises :class:`~repro.errors.IntegrityError` naming the first
        payload whose stored bytes no longer match.
        """
        reason = _validate_payloads(self.path, self.manifest)
        if reason is not None:
            raise IntegrityError(f"generation {self.index} ({self.path}): {reason}")


@dataclass
class RecoveryReport:
    """What startup recovery found and did (never raises on corruption)."""

    root: str
    examined: int = 0
    kept: list = field(default_factory=list)  # committed generation indices
    quarantined: list = field(default_factory=list)  # (name, reason) pairs
    stray_tmp: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "examined": self.examined,
            "kept": list(self.kept),
            "quarantined": [list(q) for q in self.quarantined],
            "stray_tmp": self.stray_tmp,
            "elapsed_s": self.elapsed_s,
        }


def _parse_manifest(gen_dir: Path) -> dict | None:
    try:
        return json.loads((gen_dir / MANIFEST_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _validate_payloads(gen_dir: Path, manifest: dict) -> str | None:
    """First size/CRC violation of a manifest's payload table, or None."""
    files = manifest.get("files")
    if not isinstance(files, dict) or not files:
        return "manifest has no payload table"
    for name, entry in files.items():
        path = gen_dir / name
        if not path.is_file():
            return f"missing payload {name!r}"
        size = path.stat().st_size
        if size != int(entry.get("bytes", -1)):
            return (
                f"payload {name!r} is {size} bytes, manifest recorded "
                f"{entry.get('bytes')} — torn or rewritten"
            )
        crc = _crc32_file(path)
        if crc != int(entry.get("crc32", -1)):
            return (
                f"payload {name!r} CRC-32 {crc:#010x} != manifest "
                f"{int(entry.get('crc32', -1)):#010x} — corrupted"
            )
    return None


class GenerationTxn:
    """One in-flight generation: write payloads, commit on clean exit.

    Use via ``with store.begin() as txn:`` — an exception inside the
    block leaves the directory uncommitted (and immediately quarantined,
    reason ``"aborted"``), so a failed build can never become
    :meth:`GenerationStore.latest`.
    """

    def __init__(self, store: "GenerationStore", index: int, path: Path, meta: dict):
        self.store = store
        self.index = index
        self.dir = path
        self.meta = dict(meta)
        self._kinds: dict[str, str] = {}
        self._open = True
        self.generation: Generation | None = None

    def path(self, name: str, *, kind: str | None = None) -> str:
        """Destination path for payload ``name`` inside this generation.

        ``kind="cbm"`` marks the file as a CBM archive, opting it into
        the :mod:`repro.staticcheck` artifact audit during recovery.
        """
        if not self._open:
            raise RecoveryError("transaction is already closed")
        if os.sep in name or name == MANIFEST_NAME:
            raise RecoveryError(f"invalid payload name {name!r}")
        if kind is not None:
            self._kinds[name] = kind
        return str(self.dir / name)

    def __enter__(self) -> "GenerationTxn":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._open = False
        if exc_type is not None:
            self.store._quarantine(self.dir, "aborted")
            return
        self.generation = self.store._commit(self)


class GenerationStore:
    """Crash-safe, journaled storage of versioned artifact sets.

    Parameters
    ----------
    root:
        Directory owning the generations (created if missing).
    retain:
        When set, :meth:`prune` runs after every commit keeping only the
        newest ``retain`` committed generations.
    audit_archives:
        Whether :meth:`recover` runs the static artifact audit on
        payloads of kind ``"cbm"`` (CRC validation always runs).
    """

    def __init__(self, root, *, retain: int | None = None, audit_archives: bool = True):
        if retain is not None and retain < 1:
            raise RecoveryError(f"retain must be >= 1, got {retain}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self.audit_archives = audit_archives
        # Pin refcounts keyed by generation index.  A pinned generation is
        # in active use by a reader (e.g. a live AdjacencySlot, or a loader
        # mid-swap) and must survive retention pruning: before pins, a
        # `retain=`-triggered prune racing a slow swap could rmtree the
        # directory out from under the loader.
        self._pins: dict[int, int] = {}
        self._pin_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _gen_dirs(self) -> list[tuple[int, Path]]:
        out = []
        for entry in self.root.iterdir():
            m = _GEN_RE.match(entry.name)
            if m and entry.is_dir():
                out.append((int(m.group(1)), entry))
        return sorted(out)

    def _next_index(self) -> int:
        dirs = self._gen_dirs()
        return (dirs[-1][0] + 1) if dirs else 1

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin(self, meta: dict | None = None) -> GenerationTxn:
        """Open a new generation transaction (see :class:`GenerationTxn`)."""
        index = self._next_index()
        path = self.root / f"gen-{index:06d}"
        path.mkdir()
        return GenerationTxn(self, index, path, meta or {})

    def _commit(self, txn: GenerationTxn) -> Generation:
        files = {}
        for entry in sorted(txn.dir.iterdir()):
            if not entry.is_file() or entry.name == MANIFEST_NAME:
                continue
            if is_tmp_debris(entry.name):
                raise RecoveryError(
                    f"torn temp file {entry.name!r} left in generation "
                    f"{txn.index} — a payload write failed before commit"
                )
            fsync_file(entry)
            record = {"bytes": entry.stat().st_size, "crc32": _crc32_file(entry)}
            kind = txn._kinds.get(entry.name)
            if kind is not None:
                record["kind"] = kind
            files[entry.name] = record
        if not files:
            raise RecoveryError(f"generation {txn.index} has no payload files")
        fsync_dir(txn.dir)
        manifest = {
            "store_format": _STORE_FORMAT,
            "generation": txn.index,
            "committed": True,
            "meta": txn.meta,
            "files": files,
        }
        # The manifest is the commit marker: everything above is durable
        # before it lands, and its own atomic_write makes the marker
        # itself all-or-nothing.  The sync-point below lets the crash
        # harness kill exactly between payload durability and commit.
        _checkpoint("commit", str(txn.dir / MANIFEST_NAME))
        with atomic_write(txn.dir / MANIFEST_NAME, mode="w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        fsync_dir(self.root)
        if self.retain is not None:
            self.prune(keep=self.retain)
        return Generation(index=txn.index, path=txn.dir, manifest=manifest)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def generations(self) -> list[Generation]:
        """Committed generations, oldest first (corrupt payloads are not
        re-verified here — use :meth:`Generation.verify` or
        :meth:`recover` for that)."""
        out = []
        for index, path in self._gen_dirs():
            manifest = _parse_manifest(path)
            if manifest is not None and manifest.get("committed") is True:
                out.append(Generation(index=index, path=path, manifest=manifest))
        return out

    def latest(self) -> Generation | None:
        """Newest committed generation (None for an empty store)."""
        gens = self.generations()
        return gens[-1] if gens else None

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def rollback(self, n: int = 1) -> Generation | None:
        """Retire the newest ``n`` committed generations into quarantine
        (reason ``"rolled-back"``); returns the new :meth:`latest`."""
        if n < 1:
            raise RecoveryError(f"rollback needs n >= 1, got {n}")
        gens = self.generations()
        if n > len(gens):
            raise RecoveryError(
                f"cannot roll back {n} generation(s): only {len(gens)} committed"
            )
        for gen in reversed(gens[-n:]):
            self._quarantine(gen.path, "rolled-back")
        return self.latest()

    def pin(self, index: int) -> int:
        """Protect generation ``index`` from :meth:`prune` (refcounted).

        Call before loading a generation's payloads; pair every ``pin``
        with exactly one :meth:`release`.  Returns the new refcount.
        Pinning does not verify the generation exists — a pin taken just
        before a racing prune would otherwise have nothing to protect.
        """
        with self._pin_lock:
            count = self._pins.get(index, 0) + 1
            self._pins[index] = count
            return count

    def release(self, index: int) -> int:
        """Drop one pin from generation ``index``; returns the remaining
        refcount.  Releasing an unpinned generation is a protocol bug and
        raises :class:`RecoveryError`."""
        with self._pin_lock:
            count = self._pins.get(index, 0)
            if count <= 0:
                raise RecoveryError(
                    f"release of generation {index} without a matching pin"
                )
            count -= 1
            if count:
                self._pins[index] = count
            else:
                del self._pins[index]
            return count

    def pinned(self) -> set[int]:
        """Indices currently pinned (snapshot)."""
        with self._pin_lock:
            return set(self._pins)

    def prune(self, *, keep: int) -> list[int]:
        """Delete committed generations beyond the newest ``keep``.

        Retention is the one path that deletes (old good versions are
        superseded, not suspect); corruption always goes to quarantine.
        Generations pinned via :meth:`pin` are skipped — they are in
        active use by a reader and reclaiming them would delete the
        directory out from under a load in progress; they become
        prunable again once released.  Returns the pruned indices.
        """
        if keep < 1:
            raise RecoveryError(f"prune needs keep >= 1, got {keep}")
        gens = self.generations()
        pinned = self.pinned()
        pruned = []
        for gen in gens[:-keep]:
            if gen.index in pinned:
                continue
            shutil.rmtree(gen.path)
            pruned.append(gen.index)
        if pruned:
            fsync_dir(self.root)
        return pruned

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> Path:
        """Move a file/directory into ``quarantine/``, preserving it."""
        qdir = self.quarantine_dir
        qdir.mkdir(exist_ok=True)
        short = re.sub(r"[^A-Za-z0-9_-]+", "-", reason.split(":", 1)[0]).strip("-")[:40]
        dest = qdir / f"{path.name}--{short}"
        k = 1
        while dest.exists():
            dest = qdir / f"{path.name}--{short}.{k}"
            k += 1
        os.replace(path, dest)
        with open(qdir / "QUARANTINE.log", "a", encoding="utf-8") as fh:
            fh.write(f"{dest.name}\t{reason}\n")
        fsync_dir(qdir)
        fsync_dir(self.root)
        return dest

    def quarantine_generation(self, gen: Generation, reason: str) -> Path:
        """Retire a committed-but-unusable generation (e.g. it failed to
        load during a serving swap) without deleting the evidence."""
        return self._quarantine(gen.path, reason)

    def _audit_reason(self, gen_dir: Path, manifest: dict) -> str | None:
        """First static-audit finding on the generation's CBM archives."""
        from repro.staticcheck import audit_archive

        for name, entry in manifest.get("files", {}).items():
            if entry.get("kind") != "cbm":
                continue
            report = audit_archive(gen_dir / name, subject=name)
            if not report.ok:
                finding = report.findings[0]
                return f"audit:{finding.code}: {name}: {finding.message}"
        return None

    def recover(self) -> RecoveryReport:
        """Validate every candidate generation; quarantine what fails.

        Never raises on corruption and never deletes: a generation (or
        stray temp file) that cannot be proven good moves to
        ``quarantine/`` with its reason logged, and the committed
        history that *does* validate is reported intact.
        """
        t0 = time.perf_counter()
        report = RecoveryReport(root=str(self.root))
        for entry in sorted(self.root.iterdir()):
            if entry.is_file() and is_tmp_debris(entry.name):
                self._quarantine(entry, "torn-temp")
                report.stray_tmp += 1
                report.quarantined.append((entry.name, "torn-temp"))
        for index, gen_dir in self._gen_dirs():
            report.examined += 1
            manifest = _parse_manifest(gen_dir)
            if manifest is None:
                has_manifest = (gen_dir / MANIFEST_NAME).exists()
                reason = "manifest-unreadable" if has_manifest else "uncommitted"
            elif manifest.get("committed") is not True:
                reason = "uncommitted"
            elif manifest.get("store_format") != _STORE_FORMAT:
                reason = f"unknown-store-format:{manifest.get('store_format')!r}"
            else:
                reason = _validate_payloads(gen_dir, manifest)
                if reason is None:
                    # Torn temp debris inside a committed generation is
                    # swept out file by file; the payloads just proved
                    # intact, so the generation itself stays.
                    for entry in sorted(gen_dir.iterdir()):
                        if entry.is_file() and is_tmp_debris(entry.name):
                            self._quarantine(entry, "torn-temp")
                            report.stray_tmp += 1
                            report.quarantined.append((entry.name, "torn-temp"))
                    if self.audit_archives:
                        reason = self._audit_reason(gen_dir, manifest)
            if reason is None:
                report.kept.append(index)
            else:
                self._quarantine(gen_dir, reason)
                report.quarantined.append((gen_dir.name, reason))
        report.elapsed_s = time.perf_counter() - t0
        return report
