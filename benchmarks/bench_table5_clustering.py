"""Table V — average clustering coefficient vs compression ratio.

Benchmarks the clustering-coefficient kernel against the compression
pipeline (the paper observes they cost about the same), then prints the
sorted Table V correlation.
"""

import pytest

from repro.bench.experiments import run_table5
from repro.core.builder import build_cbm
from repro.graphs.datasets import load_dataset
from repro.graphs.stats import average_clustering_coefficient, triangle_counts

from conftest import ALL, FAST, write_report


@pytest.mark.parametrize("name", FAST)
def test_clustering_vs_compression_clustering_side(benchmark, name):
    a = load_dataset(name)
    benchmark(lambda: average_clustering_coefficient(a))


@pytest.mark.parametrize("name", FAST)
def test_clustering_vs_compression_compression_side(benchmark, name):
    a = load_dataset(name)
    benchmark(lambda: build_cbm(a, alpha=0))


@pytest.mark.parametrize("name", ("Cora",))
def test_triangle_kernel(benchmark, name):
    a = load_dataset(name)
    benchmark(lambda: triangle_counts(a))


def test_report_table5(benchmark):
    def run():
        _, text = run_table5(datasets=ALL)
        write_report("table5_clustering", text)

    benchmark.pedantic(run, rounds=1, iterations=1)



def _smoke() -> None:
    a = load_dataset("Cora")
    average_clustering_coefficient(a)
    build_cbm(a, alpha=0)


def _full() -> None:
    _, text = run_table5(datasets=ALL)
    write_report("table5_clustering", text)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("table 5 clustering", _smoke, _full))
