"""Regenerate EXPERIMENTS.md from live runs of every experiment runner.

Run:  python benchmarks/generate_experiments_md.py
(takes a few minutes; wall-clock columns are measured on this machine).

``--from-results`` instead assembles the document from the tables already
rendered under ``benchmarks/results/`` (by the ``bench_*`` modules or a
previous live run).  Missing tables are skipped with a note rather than
failing, so the script works on a fresh clone or a partial CI run.
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import time

from repro.bench.experiments import (
    run_figure2,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_training_table,
)

HEADER = """# EXPERIMENTS — paper vs this reproduction

Every table and figure of the paper's evaluation (Section VI), regenerated
by this repository.  Columns marked *(paper)* are the published values;
the rest are measured/modelled here.  See DESIGN.md for the substitutions
(synthetic stand-in graphs, machine-model 16-core numbers) and why they
preserve the comparisons.

How to regenerate: `python benchmarks/generate_experiments_md.py`, or run
the individual `benchmarks/bench_*.py` files under
`pytest --benchmark-only` (tables land in `benchmarks/results/`).

Reading guide:

* **WallSeq** — measured single-core wall-clock speedup (CSR time / CBM
  time), both formats driven by the same compiled SciPy backend.
* **ModelSeq / ModelPar16** — the calibrated Xeon-6130 machine model's
  1-core / 16-core speedup prediction with the stand-in extrapolated to
  the paper graph's size (this container has one core, so 16-thread
  wall-clock is physically unavailable).
* **OpsRatio** — exact scalar-operation ratio (the quantity Properties
  1–2 bound).

"""


# (report name under benchmarks/results/, section heading) in paper order.
RESULT_SECTIONS = (
    ("table1_datasets", "Table I — datasets"),
    ("table2_compression", "Table II — compression time and ratio"),
    ("figure2_alpha_sweep", "Figure 2 — alpha sweep (AX)"),
    ("table3_variants", "Table III — AX / ADX / DADX"),
    ("table4_gcn", "Table IV — two-layer GCN inference"),
    ("table5_clustering", "Table V — clustering coefficient vs compression"),
    ("training_extension", "Extension — GCN training step (paper future work)"),
    ("staf_comparison", "Extension — related-work comparators (Section VII)"),
    ("sensitivity", "Extension — sensitivity sweeps"),
    ("runtime_plan", "Extension — plan/execute runtime amortisation"),
)


def main_from_results() -> None:
    """Assemble EXPERIMENTS.md from pre-rendered benchmarks/results/ tables.

    Tolerates missing files: each absent table becomes a one-line note
    naming the ``bench_*`` run that would produce it, so a fresh clone
    (or a CI runner that only executed a subset) still gets a document.
    """
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import read_report

    sections = [HEADER]
    sections.append(f"Environment: Python {platform.python_version()}, "
                    f"{platform.machine()} (assembled from benchmarks/results/).\n")
    present = missing = 0
    for name, title in RESULT_SECTIONS:
        text = read_report(name)
        if text is None:
            missing += 1
            sections.append(
                f"## {title}\n\n*(no `benchmarks/results/{name}.txt` yet — run the "
                "matching `bench_*` module under pytest or with no flags to "
                "generate it; skipped)*\n"
            )
            continue
        present += 1
        sections.append(f"## {title}\n\n```\n" + text.rstrip("\n") + "\n```\n")
    sections.append(
        f"---\nAssembled from {present} result file(s) "
        f"({missing} missing, skipped) by benchmarks/generate_experiments_md.py "
        "--from-results.\n"
    )
    out = pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out} ({present} tables, {missing} skipped)")


def main() -> None:
    t0 = time.time()
    sections = [HEADER]
    sections.append(f"Environment: Python {platform.python_version()}, "
                    f"{platform.machine()}, single-core container.\n")

    print("running table 1 ...")
    _, t1 = run_table1()
    sections.append("## Table I — datasets\n\n```\n" + t1 + "\n```\n")
    sections.append(
        "The stand-ins match the paper's average degree and clustering per\n"
        "family; node counts are scaled down (DESIGN.md).  ogbn-proteins is\n"
        "deliberately scaled deeper (deg ~110 vs 298) to stay in budget.\n"
    )

    print("running table 2 ...")
    _, t2 = run_table2()
    sections.append("## Table II — compression time and ratio\n\n```\n" + t2 + "\n```\n")
    sections.append(
        "Shape check vs paper: compression ratios fall from alpha=0 to 32 on\n"
        "every graph; citation graphs sit at ~1x, co-authorship/PPI at ~2x,\n"
        "COLLAB/co-papers at 6-11x; construction is faster at alpha=32.\n"
    )

    print("running figure 2 (wall-clock measured) ...")
    rows_f2, f2 = run_figure2(measure_wall=True)
    sections.append("## Figure 2 — alpha sweep (AX)\n\n```\n" + f2 + "\n```\n")

    # Two representative panels drawn as ASCII charts (paper Fig. 2 shape).
    from repro.bench.plots import figure2_panel

    panels = []
    for graph in ("ca-HepPh", "COLLAB"):
        sub = [r for r in rows_f2 if r["Graph"] == graph]
        panels.append(
            figure2_panel(
                [r["Alpha"] for r in sub],
                [float(r["ModelSeq"]) for r in sub],
                [float(r["ModelPar16"]) for r in sub],
                [float(r["Ratio"]) for r in sub],
                graph=graph,
            )
        )
    sections.append("```\n" + "\n\n".join(panels) + "\n```\n")
    sections.append(
        "Shape check vs paper: speedup tracks compression ratio; the\n"
        "citation graphs hover at ~1x and recover slightly with alpha>=2; the\n"
        "clique families hold 2-7x over the sweep; 16-core parallel speedup\n"
        "peaks at moderate-to-large alpha for COLLAB/co-papers while their\n"
        "compression ratio falls.\n"
    )

    print("running table 3 (wall-clock measured) ...")
    _, t3 = run_table3(measure_wall=True)
    sections.append("## Table III — AX / ADX / DADX\n\n```\n" + t3 + "\n```\n")
    sections.append(
        "Shape check vs paper: ADX and DADX cost the same as AX to within\n"
        "noise for both formats (identical delta sparsity; fused/deferred\n"
        "scaling is cheap), so the AX speedups carry over.\n"
    )

    print("running table 4 (wall-clock measured) ...")
    _, t4 = run_table4(measure_wall=True)
    sections.append("## Table IV — two-layer GCN inference\n\n```\n" + t4 + "\n```\n")
    sections.append(
        "Shape check vs paper: GCN speedups are diluted relative to raw\n"
        "DADX speedups because the two dense GEMMs are format-independent;\n"
        "citation graphs stay at ~1x, the clique families keep 1.4-2.5x.\n"
    )

    print("running table 5 ...")
    _, t5 = run_table5()
    sections.append("## Table V — clustering coefficient vs compression\n\n```\n" + t5 + "\n```\n")
    sections.append(
        "Shape check vs paper: sorting by compression ratio reproduces the\n"
        "paper's ordering (citation < co-author/PPI < co-papers/COLLAB) and\n"
        "the same caveats — PubMed's degree, not clustering, limits it, and\n"
        "ogbn-proteins out-compresses ca-AstroPh despite lower clustering.\n"
    )

    print("running training extension ...")
    _, tt = run_training_table()
    sections.append(
        "## Extension — GCN training step (paper future work)\n\n```\n" + tt + "\n```\n"
    )
    sections.append(
        "Forward + manual backward both multiply with the symmetric Â, so one\n"
        "CBM matrix accelerates the whole step; speedups exceed inference\n"
        "(Table IV) because no W GEMMs of the paper's 500-wide layers dilute\n"
        "them at this feature width.\n"
    )

    print("running related-work comparison ...")
    from repro.core.builder import build_cbm
    from repro.core.bl2001 import build_bl2001
    from repro.staf import build_staf
    from repro.graphs.datasets import load_dataset
    from repro.utils.fmt import format_table

    rw_rows = []
    for name in ("Cora", "ca-HepPh", "COLLAB", "coPapersCiteseer"):
        a = load_dataset(name)
        _, rep = build_cbm(a, alpha=0)
        staf = build_staf(a)
        _, rep_bl = build_bl2001(a)
        rw_rows.append(
            [
                name,
                f"{rep.compression_ratio:.2f}",
                f"{staf.compression_ratio():.2f}",
                f"{rep_bl.compression_ratio:.2f}",
            ]
        )
    rw = format_table(
        ["Graph", "CBM", "STAF(Nishino'14)", "BL(Björklund'01)"],
        rw_rows,
        title="Compression ratio vs related-work formats (alpha=0)",
    )
    sections.append("## Extension — related-work comparators (Section VII)\n\n```\n" + rw + "\n```\n")
    sections.append(
        "CBM's whole-row deltas dominate STAF's suffix-only sharing on the\n"
        "clustered families; BL (no virtual node) sits in between and lacks\n"
        "the worst-case guarantees (a Property-1 violation is demonstrated in\n"
        "the test suite).\n"
    )

    print("running sensitivity sweeps ...")
    from repro.bench.sensitivity import sweep_duplication, sweep_noise

    sens_rows = [
        [r["replication"], f"{r['ratio']:.2f}"] for r in sweep_duplication()
    ]
    s1 = format_table(
        ["replication r", "ratio"], sens_rows,
        title="Sensitivity — row replication (ratio -> r; CBM's mechanism isolated)",
    )
    sens_rows = [
        [r["flips_per_row"], f"{r['clustering']:.2f}", f"{r['ratio']:.2f}"]
        for r in sweep_noise()
    ]
    s2 = format_table(
        ["flips/row", "clustering", "ratio"], sens_rows,
        title="Sensitivity — noise on disjoint cliques (smooth degradation)",
    )
    sections.append("## Extension — sensitivity sweeps\n\n```\n" + s1 + "\n\n" + s2 + "\n```\n")

    sections.append(
        f"---\nGenerated in {time.time() - t0:.0f}s by "
        "benchmarks/generate_experiments_md.py.\n"
    )
    out = pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out}")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--from-results",
        action="store_true",
        help="assemble from benchmarks/results/*.txt, skipping missing tables",
    )
    args = ap.parse_args()
    main_from_results() if args.from_results else main()
