"""Serving-layer soak benchmark — chaos under concurrent load.

Drives :func:`repro.serving.run_soak` (healthy → chaos → recovery) with
at least four concurrent client threads against an
:class:`~repro.serving.InferenceService` and records the acceptance
evidence for the serving tier in ``BENCH_PR3.json``:

* zero results diverging from the CSR reference (every success verified
  client-side against ``spmm(source, x)``);
* zero hung requests (every submission resolves to a result or a typed
  error within its deadline budget plus a grace window);
* the circuit breaker demonstrably trips CBM → guarded-CBM → CSR
  degraded mode under injected worker kills/stalls, and recovers back to
  the fast tier through half-open probing once the faults stop;
* shed / retry / breaker-transition counts and per-phase p50/p99
  latencies.

Run standalone::

    python benchmarks/bench_serving_soak.py            # full (PubMed)
    python benchmarks/bench_serving_soak.py --smoke    # CI-sized (Cora)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import time
import warnings

from repro.graphs.datasets import load_dataset
from repro.reliability.guard import FallbackWarning
from repro.serving import run_soak

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR3.json"

FULL = dict(
    dataset="PubMed", alpha=2, clients=6, requests_per_client=25, p=32,
    deadline_s=3.0, threads=2, workers=3, fail_rate=0.45, stall_rate=0.15,
    seed=7,
)
SMOKE = dict(
    dataset="Cora", alpha=0, clients=4, requests_per_client=10, p=16,
    deadline_s=2.0, threads=2, workers=2, fail_rate=0.45, stall_rate=0.15,
    seed=7,
)


def run_workload(cfg: dict) -> dict:
    """Run the three-phase soak on one dataset; return the JSON record."""
    cfg = dict(cfg)
    a = load_dataset(cfg.pop("dataset"))
    with warnings.catch_warnings():
        # The chaos phase degrades on purpose; the dedup logic is covered
        # by the unit tests, the bench only needs the counters.
        warnings.simplefilter("ignore", FallbackWarning)
        report = run_soak(a, **cfg)
    return {
        "benchmark": "serving_soak",
        **report,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Serving soak — n={w['nodes']} (alpha={w['alpha']}, "
        f"{w['clients']} clients x {w['requests_per_client']} req/phase, "
        f"p={w['feature_width']}, deadline {w['deadline_s']:.1f}s, "
        f"fail/stall rates {w['fail_rate']:.2f}/{w['stall_rate']:.2f})",
    ]
    for ph in record["phases"]:
        p50 = f"{ph['latency_p50_ms']:7.2f}" if ph["latency_p50_ms"] is not None else "      -"
        p99 = f"{ph['latency_p99_ms']:7.2f}" if ph["latency_p99_ms"] is not None else "      -"
        lines.append(
            f"  {ph['phase']:<9} {ph['requests']:4d} req: {ph['ok']:4d} ok, "
            f"{ph['wrong']} wrong, {ph['shed']} shed, {ph['hung']} hung, "
            f"{ph['input_rejected']} rejected | p50 {p50} ms, p99 {p99} ms"
        )
    ch, sv, br = record["chaos"], record["service"], record["breaker"]
    lines.append(
        f"  chaos: {ch['injected_failures']} kills + {ch['injected_stalls']} "
        f"stalls over {ch['built']} executors; {sv['retries']} retries, "
        f"{sv['shed']} shed; breaker {br['transitions']} transitions, "
        f"final {br['state']}@{br['tier']}"
    )
    for key, ok in record["checks"].items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {key}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<30 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    args = ap.parse_args(argv)

    record = run_workload(SMOKE if args.smoke else FULL)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[written to {path}]")
    return 0 if record["ok"] else 1


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_serving_happy_path(benchmark, rng):
    """Round-trip latency of one request through the service (no chaos)."""
    import numpy as np

    from repro.serving import AdjacencySlot, InferenceService

    a = load_dataset("Cora")
    slot = AdjacencySlot.from_graph(a, alpha=2)
    x = rng.random((a.shape[0], 16), dtype=np.float64).astype(np.float32)
    with InferenceService(slot, workers=2) as svc:
        svc.submit(x).result(10.0)  # warm plan + pool outside the timer
        benchmark(lambda: svc.submit(x).result(10.0))


def test_report_serving_soak(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("serving_soak", render(record))
        assert record["ok"], record["violations"]

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
