"""Ablation benchmarks for the design choices called out in DESIGN.md.

* level-vectorised vs per-edge update stage (our optimisation vs the
  paper's literal axpy loop);
* deferred vs fused DAD scaling (our reformulation vs the paper's Eq. 6);
* SciPy-backed vs pure-NumPy reference multiplication engine;
* global vs clustered construction (the paper's future-work scaling idea);
* dynamic branch scheduling vs a level-barrier schedule (simulated).
"""

import numpy as np
import pytest

from repro.core.builder import build_cbm, build_clustered
from repro.graphs.datasets import load_dataset
from repro.graphs.laplacian import gcn_normalization
from repro.parallel.schedule import simulate_dynamic_schedule, update_stage_schedule
from repro.sparse.ops import Engine

from conftest import write_report

P = 256
NAME = "ca-HepPh"


@pytest.fixture(scope="module")
def setup(rng):
    a = load_dataset(NAME)
    cbm, _ = build_cbm(a, alpha=0)
    x = rng.random((a.shape[1], P), dtype=np.float64).astype(np.float32)
    return a, cbm, x


@pytest.mark.parametrize("update", ["level", "edge"])
def test_update_mode(benchmark, setup, update):
    _, cbm, x = setup
    benchmark(lambda: cbm.matmul(x, update=update))


@pytest.mark.parametrize("scaling", ["deferred", "fused"])
def test_dad_scaling_mode(benchmark, rng, scaling):
    a = load_dataset(NAME)
    binary, diag = gcn_normalization(a)
    cbm, _ = build_cbm(binary, alpha=0, variant="DAD", diag=diag)
    x = rng.random((a.shape[1], P), dtype=np.float64).astype(np.float32)
    benchmark(lambda: cbm.matmul(x, scaling=scaling))


@pytest.mark.parametrize("engine", [Engine.SCIPY, Engine.REFERENCE])
def test_multiply_engine(benchmark, setup, engine):
    _, cbm, x = setup
    benchmark(lambda: cbm.matmul(x, engine=engine))


@pytest.mark.parametrize("builder", ["global", "clustered"])
def test_construction_strategy(benchmark, builder):
    a = load_dataset(NAME)
    if builder == "global":
        benchmark(lambda: build_cbm(a, alpha=0))
    else:
        benchmark(lambda: build_clustered(a, cluster_size=512))


def test_report_scheduling_ablation(benchmark):
    def run():
        """Dynamic branch schedule vs a level-barrier schedule, 16 threads."""
        from repro.utils.fmt import format_table
    
        rows = []
        for name in ("ca-HepPh", "COLLAB"):
            a = load_dataset(name)
            for alpha in (0, 8, 32):
                cbm, _ = build_cbm(a, alpha=alpha)
                dyn = update_stage_schedule(cbm.tree, P, 16)
                # Level-barrier: each depth level is a synchronised batch whose
                # span is ceil(level_size / threads) row updates.
                levels = cbm.tree.levels()
                barrier = sum(
                    simulate_dynamic_schedule(np.full(len(lv), float(P)), 16).makespan
                    for lv in levels
                )
                rows.append(
                    [
                        name,
                        alpha,
                        f"{dyn.makespan:.0f}",
                        f"{barrier:.0f}",
                        f"{barrier / dyn.makespan:.2f}x" if dyn.makespan else "-",
                        dyn.tasks,
                        len(levels),
                    ]
                )
        text = format_table(
            ["Graph", "Alpha", "DynamicMakespan", "BarrierMakespan", "BarrierCost", "Branches", "Levels"],
            rows,
            title="Ablation — branch-dynamic vs level-barrier update scheduling (16 threads, ops)",
        )
        write_report("ablation_scheduling", text)

    benchmark.pedantic(run, rounds=1, iterations=1)

def test_report_clustered_ablation(benchmark):
    def run():
        """Compression quality vs cluster size (future-work construction)."""
        from repro.utils.fmt import format_table
    
        a = load_dataset("COLLAB")
        rows = []
        _, rep = build_cbm(a, alpha=0)
        rows.append(["global", f"{rep.compression_ratio:.2f}", rep.roots, rep.candidate_edges])
        for size in (256, 1024, 4096):
            _, rep = build_clustered(a, cluster_size=size)
            rows.append([f"clustered[{size}]", f"{rep.compression_ratio:.2f}", rep.roots, rep.candidate_edges])
        text = format_table(
            ["Builder", "Ratio", "Roots", "CandidateEdges"],
            rows,
            title="Ablation — global vs clustered construction (COLLAB stand-in)",
        )
        write_report("ablation_clustered", text)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_rebalance_ablation(benchmark):
    def run():
        """Post-hoc rebalancing: compression vs schedule makespan.

        Uses a blow-up graph whose near-identical rows chain into a few
        giant branches — the worst case for branch-level parallelism and
        the input where post-hoc splitting matters.
        """
        import numpy as np

        from repro.core.rebalance import split_branches
        from repro.parallel.schedule import update_stage_schedule
        from repro.sparse.csr import CSRMatrix
        from repro.utils.fmt import format_table

        # Cumulative-membership matrix: row i = columns {0..i}.  Each row
        # extends the previous by one delta, so the compression tree is a
        # single n-row chain — maximum compression, zero branch
        # parallelism: the input split_branches exists for.
        n = 1200
        indptr = np.cumsum(np.concatenate([[0], np.arange(1, n + 1)]))
        indices = np.concatenate([np.arange(i + 1) for i in range(n)])
        a = CSRMatrix(indptr, indices, np.ones(len(indices), dtype=np.float32), (n, n))
        cbm, _ = build_cbm(a, alpha=0)
        rows = []
        for cap in (None, 512, 128, 32):
            m = cbm if cap is None else split_branches(cbm, cap)
            sched = update_stage_schedule(m.tree, P, 16)
            rows.append(
                [
                    "none" if cap is None else cap,
                    f"{m.compression_ratio():.2f}",
                    len(m.tree.branches()),
                    max(len(b) for b in m.tree.branches()),
                    f"{sched.makespan:.0f}",
                    f"{sched.utilisation:.2f}",
                ]
            )
        text = format_table(
            ["BranchCap", "Ratio", "Branches", "Largest", "Makespan[ops]", "Util"],
            rows,
            title="Ablation — post-hoc branch splitting (chain tree, 16 threads)",
        )
        write_report("ablation_rebalance", text)

    benchmark.pedantic(run, rounds=1, iterations=1)

@pytest.mark.parametrize("panel", [64, 256])
def test_blocked_cbm_kernel(benchmark, setup, panel):
    from repro.sparse.blocked import cbm_matmul_blocked

    _, cbm, x = setup
    benchmark(lambda: cbm_matmul_blocked(cbm, x, panel=panel))


def test_matvec_kernel(benchmark, setup, rng):
    """The paper's Section IV matrix-vector kernel in its native 1-D shape."""
    a, cbm, _ = setup
    v = rng.random(a.shape[1], dtype=np.float64).astype(np.float32)
    benchmark(lambda: cbm.matvec(v))


def test_csr_matvec_baseline(benchmark, setup, rng):
    from repro.sparse.ops import spmv

    a, _, _ = setup
    v = rng.random(a.shape[1], dtype=np.float64).astype(np.float32)
    benchmark(lambda: spmv(a, v))


@pytest.mark.parametrize("clustering", ["signature", "label_propagation"])
def test_clustering_strategy(benchmark, clustering):
    a = load_dataset("ca-HepPh")
    benchmark.pedantic(
        lambda: build_clustered(a, cluster_size=512, clustering=clustering),
        rounds=2,
        iterations=1,
    )

def test_report_scaling_curves(benchmark):
    def run():
        """Full strong-scaling curves from the model (paper has endpoints only)."""
        from repro.graphs.datasets import paper_stats
        from repro.parallel.scaling import parallel_efficiency, strong_scaling_curve
        from repro.utils.fmt import format_table

        rows = []
        for name in ("ca-HepPh", "COLLAB"):
            a = load_dataset(name)
            ps = paper_stats(name)
            cbm, _ = build_cbm(a, alpha=4)
            curve = strong_scaling_curve(
                a, cbm, 500,
                scale_nnz=ps.edges / a.nnz,
                scale_rows=ps.nodes / a.shape[0],
            )
            eff = parallel_efficiency(curve)
            for pt, ec, eb in zip(curve, eff["csr"], eff["cbm"], strict=True):
                rows.append(
                    [
                        name,
                        pt.cores,
                        f"{pt.csr_s * 1e3:.2f}",
                        f"{pt.cbm_s * 1e3:.2f}",
                        f"{pt.speedup:.2f}",
                        f"{ec:.2f}",
                        f"{eb:.2f}",
                    ]
                )
        text = format_table(
            ["Graph", "Cores", "CSR[ms]", "CBM[ms]", "Speedup", "EffCSR", "EffCBM"],
            rows,
            title="Strong scaling (model, paper-scale graphs)",
        )
        write_report("scaling_curves", text)

    benchmark.pedantic(run, rounds=1, iterations=1)


def _smoke() -> None:
    a = load_dataset("Cora")
    cbm, _ = build_cbm(a, alpha=0)
    x = np.random.default_rng(0).random((a.shape[1], 8)).astype(np.float32)
    for update in ("level", "edge"):
        cbm.matmul(x, update=update)
    for engine in (Engine.SCIPY,):
        cbm.matmul(x, engine=engine)
    update_stage_schedule(cbm.tree, 8, 4)
    simulate_dynamic_schedule(np.ones(16), 4)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("ablation benchmarks", _smoke))
