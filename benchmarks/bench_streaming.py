"""Streaming-mutation benchmark — patch latency, rebuild cost, swap-storm p99.

Drives a batched :class:`~repro.serving.InferenceService` over a
:class:`~repro.streaming.MutableAdjacency` at several concurrency
levels, twice per level:

* **steady** — no mutations, the PR 6 serving fast path;
* **storm**  — a mutator thread applies random edge batches and
  publishes every patched snapshot (one generation swap per batch)
  while a :class:`~repro.streaming.BackgroundRebuilder` recompresses
  and swaps fresh builds, so clients measure latency *through* a
  continuous swap storm.

The record (``BENCH_PR7.json``) carries patch-latency percentiles,
rebuild wall-clock, and per-level steady vs storm p50/p99/rps.  The
acceptance bar is storm p99 within ``p99_factor`` (2x, full mode) of
steady p99 — zero-downtime swaps must not meaningfully dent tail
latency.  ``calibration_rps`` and the ``batched`` key of each level
(the storm numbers — the guarded configuration) keep the record
compatible with ``benchmarks/check_regression.py``.

Run standalone::

    python benchmarks/bench_streaming.py            # full (COLLAB)
    python benchmarks/bench_streaming.py --smoke    # CI-sized (Cora)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import tempfile
import threading
import time

import numpy as np

from repro.errors import StalenessError
from repro.graphs.datasets import load_dataset
from repro.recovery import GenerationStore
from repro.serving import AdjacencySlot, BatchConfig, InferenceService
from repro.sparse.ops import spmm
from repro.streaming import (
    BackgroundRebuilder,
    DriftPolicy,
    DriftTracker,
    EdgeBatch,
    MutableAdjacency,
    publish_snapshot,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR7.json"

# Narrow per-request operands (p=2), as in bench_serving_batch: each
# request pays the fixed structure-streaming cost that batching
# amortises, which is also the cost a swap perturbs (the first request
# after a swap runs on a cold plan).  The storm publishes one snapshot
# per mutation batch — far more swaps per second than any production
# deployment — so the p99 factor is measured under deliberately brutal
# churn.
FULL = dict(
    dataset="PubMed", alpha=2, concurrency=(4, 16), requests_per_client=100,
    p=2, deadline_s=2.0, workers=2, passes=3, max_columns=64,
    latency_budget_s=0.002, mutation_edges=4, mutation_period_s=0.025,
    staleness_budget=32, max_drift=0.10, p99_factor=2.0, p99_level=4, seed=11,
)
SMOKE = dict(
    dataset="Cora", alpha=0, concurrency=(4, 16), requests_per_client=25,
    p=2, deadline_s=2.0, workers=2, passes=3, max_columns=64,
    latency_budget_s=0.002, mutation_edges=4, mutation_period_s=0.002,
    staleness_budget=6, max_drift=0.10, p99_factor=None, p99_level=4, seed=11,
)


def _calibrate(source, *, repeats: int = 20) -> float:
    """Ops/sec of a fixed reference SpMM (same estimator as PR 6)."""
    x = np.random.default_rng(0).standard_normal((source.shape[1], 16))
    x = x.astype(np.float32)
    spmm(source, x)  # warm
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        spmm(source, x)
        times.append(time.perf_counter() - t0)
    return 1.0 / min(times)


def _drive(
    service: InferenceService,
    operands: list,
    *,
    clients: int,
    requests_per_client: int,
    deadline_s: float,
) -> dict:
    """Closed-loop load: each client submits, waits, repeats."""
    lock = threading.Lock()
    latencies: list[float] = []
    errors = [0]
    barrier = threading.Barrier(clients + 1)

    def client(k: int) -> None:
        barrier.wait()
        for i in range(requests_per_client):
            x = operands[(k * requests_per_client + i) % len(operands)]
            t0 = time.perf_counter()
            try:
                service.submit(x, deadline_s=deadline_s).result(deadline_s + 10.0)
            except Exception:
                with lock:
                    errors[0] += 1
                continue
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)

    threads = [
        threading.Thread(target=client, args=(k,), name=f"bench-client-{k}")
        for k in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "clients": clients,
        "completed": int(lat.size),
        "errors": errors[0],
        "elapsed_s": elapsed,
        "rps": float(lat.size / elapsed) if elapsed > 0 else 0.0,
        "p50_ms": float(np.percentile(lat, 50) * 1e3) if lat.size else None,
        "p99_ms": float(np.percentile(lat, 99) * 1e3) if lat.size else None,
    }


def run_workload(cfg: dict, *, root: str | None = None) -> dict:
    cfg = dict(cfg)
    dataset = cfg.pop("dataset")
    a = load_dataset(dataset)
    rng = np.random.default_rng(cfg["seed"])
    n = a.shape[0]
    operands = [
        rng.standard_normal((n, cfg["p"])).astype(np.float32) for _ in range(16)
    ]
    calibration_rps = _calibrate(a)
    tmpdir = root or tempfile.mkdtemp(prefix="bench-streaming-")

    levels = []
    patch_seconds: list[float] = []
    rebuild_walls: list[float] = []
    total_rebuilds = 0
    for clients in cfg["concurrency"]:
        tracker = DriftTracker(
            DriftPolicy(
                max_drift=cfg["max_drift"],
                staleness_budget=cfg["staleness_budget"],
                columns=cfg["p"],
            )
        )
        mutable = MutableAdjacency.from_graph(a, alpha=cfg["alpha"], tracker=tracker)
        version, cbm, source = mutable.snapshot()
        slot = AdjacencySlot(cbm, source, tracker=tracker)
        slot.graph_version = version
        store = GenerationStore(
            pathlib.Path(tmpdir) / f"store-{clients}", retain=3
        )
        service = InferenceService(
            slot,
            workers=cfg["workers"],
            queue_capacity=max(128, 2 * clients),
            default_deadline_s=cfg["deadline_s"],
            batch=BatchConfig(
                max_columns=cfg["max_columns"],
                latency_budget_s=cfg["latency_budget_s"],
            ),
            seed=cfg["seed"],
        )
        rebuilder = BackgroundRebuilder(
            mutable, store, service, poll_interval_s=0.005,
            warm_width=cfg["max_columns"],
        )
        with service:
            warm = [service.submit(operands[i % len(operands)]) for i in range(32)]
            for fut in warm:
                fut.result(60.0)

            steady_passes = [
                _drive(
                    service,
                    operands,
                    clients=clients,
                    requests_per_client=cfg["requests_per_client"],
                    deadline_s=cfg["deadline_s"],
                )
                for _ in range(cfg["passes"])
            ]
            steady = max(steady_passes, key=lambda r: r["rps"])
            steady["errors"] = sum(r["errors"] for r in steady_passes)

            stop_evt = threading.Event()
            level_patches: list[float] = []

            def mutator(
                mut=mutable, reb=rebuilder, stop=stop_evt, out=level_patches
            ) -> None:
                j = 0
                while not stop.is_set():
                    _, _, src = mut.snapshot()
                    batch = EdgeBatch.random(
                        src,
                        inserts=cfg["mutation_edges"],
                        deletes=cfg["mutation_edges"],
                        seed=cfg["seed"] * 6151 + j,
                    )
                    j += 1
                    try:
                        report = mut.apply(batch)
                    except StalenessError:
                        time.sleep(cfg["mutation_period_s"])
                        continue
                    out.append(report.seconds)
                    # Warm the batch-width workspace before the swap so
                    # the first post-swap batch does not pay allocation.
                    publish_snapshot(mut, service, warm_width=cfg["max_columns"])
                    reb.trigger()
                    time.sleep(cfg["mutation_period_s"])

            rebuilder.start()
            mut_thread = threading.Thread(target=mutator, name="bench-mutator")
            mut_thread.start()
            storm_passes = [
                _drive(
                    service,
                    operands,
                    clients=clients,
                    requests_per_client=cfg["requests_per_client"],
                    deadline_s=cfg["deadline_s"],
                )
                for _ in range(cfg["passes"])
            ]
            stop_evt.set()
            mut_thread.join()
            rebuilder.stop()
            storm = max(storm_passes, key=lambda r: r["rps"])
            storm["errors"] = sum(r["errors"] for r in storm_passes)
            swaps = service.stats.snapshot()["swaps"]

        patch_seconds.extend(level_patches)
        rebuild_walls.extend(r.total_seconds for r in rebuilder.reports)
        total_rebuilds += len(rebuilder.reports)
        # The ratio uses the minimum-noise estimator on BOTH sides (best
        # p99 across passes): a single pass's p99 lands on whichever
        # requests happened to collide with a background rebuild, so
        # per-pass ratios swing 2x run to run while the best-pass ratio
        # isolates the steady swap-churn cost the check is about.
        steady_p99s = [r["p99_ms"] for r in steady_passes if r["p99_ms"]]
        storm_p99s = [r["p99_ms"] for r in storm_passes if r["p99_ms"]]
        p99_ratio = (
            min(storm_p99s) / min(steady_p99s)
            if storm_p99s and steady_p99s
            else None
        )
        levels.append(
            {
                "concurrency": clients,
                "steady": steady,
                # The storm numbers sit under "batched" so the
                # regression gate reads the guarded configuration.
                "batched": storm,
                "p99_ratio": p99_ratio,
                "swaps": swaps,
                "patches": len(level_patches),
                "rebuilds": len(rebuilder.reports),
                "rebuild_errors": len(rebuilder.errors),
                "tracker": tracker.snapshot(),
            }
        )

    patch = np.asarray(patch_seconds, dtype=np.float64)
    factor = cfg["p99_factor"]
    # The p99 bound is asserted at the unsaturated operating level
    # (p99_level) — at saturation every added millisecond of mutator
    # work lands on queue wait and the tail measures the queue, not the
    # swap.  The other levels are still recorded.
    gate_level = next(
        (lv for lv in levels if lv["concurrency"] == cfg["p99_level"]),
        levels[0],
    )
    checks = {
        "zero_errors": all(
            lv["steady"]["errors"] + lv["batched"]["errors"] == 0 for lv in levels
        ),
        # Self-normalised throughput floor: the storm must retain at
        # least 40% of the SAME run's steady throughput per level.
        # Absolute rps through the threaded service swings ~3x run to
        # run on a loaded single-core box (scheduler noise the spmm
        # calibration cannot see), but storm/steady within one run is
        # stable (measured 0.5-1.0) — a broken patch/swap path tanks it.
        "storm_keeps_throughput": all(
            lv["steady"]["rps"] > 0
            and lv["batched"]["rps"] / lv["steady"]["rps"] >= 0.4
            for lv in levels
        ),
        "swaps_under_load": all(lv["swaps"] > 0 for lv in levels),
        "rebuild_completed": total_rebuilds >= 1,
        "zero_rebuild_errors": all(lv["rebuild_errors"] == 0 for lv in levels),
        "p99_within_factor": (
            True
            if factor is None
            else (
                gate_level["p99_ratio"] is not None
                and gate_level["p99_ratio"] <= factor
            )
        ),
    }
    return {
        "benchmark": "streaming",
        "workload": {
            "dataset": dataset,
            "nodes": n,
            "nnz": a.nnz,
            **cfg,
            "concurrency": list(cfg["concurrency"]),
        },
        "calibration_rps": calibration_rps,
        "levels": levels,
        "patch_ms": {
            "count": int(patch.size),
            "p50": float(np.percentile(patch, 50) * 1e3) if patch.size else None,
            "p95": float(np.percentile(patch, 95) * 1e3) if patch.size else None,
            "max": float(patch.max() * 1e3) if patch.size else None,
        },
        "rebuild_s": {
            "count": total_rebuilds,
            "mean": float(np.mean(rebuild_walls)) if rebuild_walls else None,
            "max": float(np.max(rebuild_walls)) if rebuild_walls else None,
        },
        "checks": checks,
        "ok": all(checks.values()),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    pm, rb = record["patch_ms"], record["rebuild_s"]
    lines = [
        f"Streaming mutations — {w['dataset']} (n={w['nodes']}, nnz={w['nnz']}, "
        f"±{w['mutation_edges']} edges/batch, staleness budget "
        f"{w['staleness_budget']}, calibration {record['calibration_rps']:.1f} spmm/s)",
        f"  patch latency: p50 {pm['p50'] or 0:.2f} ms, p95 {pm['p95'] or 0:.2f} ms "
        f"over {pm['count']} batches | rebuild: {rb['count']} x "
        f"{(rb['mean'] or 0) * 1e3:.1f} ms mean wall",
    ]
    for lv in record["levels"]:
        s, b = lv["steady"], lv["batched"]
        ratio = f"{lv['p99_ratio']:.2f}x" if lv["p99_ratio"] else "n/a"
        lines.append(
            f"  {lv['concurrency']:3d} clients: steady {s['rps']:8.1f} rps "
            f"(p99 {s['p99_ms']:7.2f} ms) | storm {b['rps']:8.1f} rps "
            f"(p99 {b['p99_ms']:7.2f} ms, {lv['swaps']} swaps, "
            f"{lv['rebuilds']} rebuilds) | p99 ratio {ratio}"
        )
    for key, ok in record["checks"].items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {key}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<60 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    args = ap.parse_args(argv)

    record = run_workload(SMOKE if args.smoke else FULL)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[written to {path}]")
    return 0 if record["ok"] else 1


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_patch_latency(benchmark, rng):
    """Latency of applying one +-4-edge batch to a Cora-sized CBM."""
    a = load_dataset("Cora")
    mutable = MutableAdjacency.from_graph(a, alpha=0)
    counter = [0]

    def apply_one():
        _, _, src = mutable.snapshot()
        counter[0] += 1
        mutable.apply(
            EdgeBatch.random(src, inserts=4, deletes=4, seed=counter[0])
        )

    benchmark(apply_one)


def test_report_streaming(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("streaming", render(record))
        assert record["ok"], record["checks"]

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
