"""Related-work comparison: CSR vs CBM vs STAF (paper Section VII).

STAF (Nishino et al. 2014) shares only common row *suffixes*; CBM
compresses whole rows differentially.  This benchmark quantifies the gap
the paper argues qualitatively: on clustered graphs CBM compresses and
accelerates far more, while STAF's trie still beats CSR slightly.
"""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.graphs.datasets import load_dataset
from repro.staf import build_staf
from repro.utils.fmt import format_table

from conftest import ALL, FAST, write_report

P = 256


@pytest.mark.parametrize("name", FAST)
def test_staf_build(benchmark, name):
    a = load_dataset(name)
    benchmark(lambda: build_staf(a))


@pytest.mark.parametrize("name", FAST)
def test_staf_spmm(benchmark, name, rng):
    a = load_dataset(name)
    st = build_staf(a)
    x = rng.random((a.shape[1], P), dtype=np.float64).astype(np.float32)
    benchmark(lambda: st.matmul(x))


def test_report_staf_comparison(benchmark):
    def run():
        rows = []
        for name in ALL:
            a = load_dataset(name)
            st = build_staf(a)
            cbm, rep = build_cbm(a, alpha=0)
            p = P
            ops_csr = 2 * a.nnz * p
            rows.append(
                [
                    name,
                    f"{rep.compression_ratio:.2f}",
                    f"{st.compression_ratio():.2f}",
                    f"{ops_csr / max(cbm.scalar_ops(p).total, 1):.2f}",
                    f"{ops_csr / max(st.scalar_ops(p), 1):.2f}",
                    cbm.num_deltas,
                    st.num_nodes,
                    a.nnz,
                ]
            )
        text = format_table(
            [
                "Graph",
                "CBM ratio",
                "STAF ratio",
                "CBM ops x",
                "STAF ops x",
                "CBM deltas",
                "STAF nodes",
                "nnz",
            ],
            rows,
            title="Related work — CBM vs STAF vs CSR (alpha=0, p=256)",
        )
        write_report("staf_comparison", text)

    benchmark.pedantic(run, rounds=1, iterations=1)


def _smoke() -> None:
    a = load_dataset("Cora")
    st = build_staf(a)
    x = np.random.default_rng(0).random((a.shape[1], 4)).astype(np.float32)
    st.matmul(x)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("STAF comparison", _smoke))
