"""Shard-scaling benchmark — multi-process speedup vs the simulated-machine model.

Executes one :class:`~repro.parallel.ShardedPlan` (degree-aware row
blocks, per-shard compression trees, operands in shared memory) at
several worker counts, three ways per level:

* **threads**  — ``plan.execute_threaded``, the single-process DEGRADED
  tier (worker count is irrelevant; measured once as the floor);
* **raw**      — :func:`~repro.parallel.unsupervised_execute` over a
  warm persistent pool: bare shard dispatch with no heartbeats, no
  commit verification, no retry machinery;
* **supervised** — :class:`~repro.parallel.ShardSupervisor` at the FAST
  tier (epoch verification, heartbeat watchdog armed, breaker wrapped).

The record (``BENCH_PR8.json``) carries, per level, measured speedup
over 1 worker and the speedup :func:`~repro.parallel.predict_cbm_spmm`
predicts for ``min(workers, cpu_count)`` cores of the simulated
machine — the PR 3 model validated against *threads* is here validated
against *processes*.  Checks:

* ``supervision_overhead`` — supervised throughput within
  ``overhead_budget`` (10%) of raw dispatch at every level: crash
  isolation must be near-free when nothing crashes;
* ``process_speedup`` — with >= 4 physical cores (GitHub CI runners),
  4 supervised workers must beat 1 worker by ``speedup_floor``;
* ``model_agreement`` — measured speedup within ``model_tolerance`` of
  predicted at every level (both sides clamped by the cores actually
  available, so a single-core box predicts ~1x and trivially agrees).

The ``batched`` key of each level holds the supervised numbers and
``calibration_rps`` a fixed reference SpMM rate, keeping the record
compatible with ``benchmarks/check_regression.py``
(machine-portable metric: supervised executions per reference SpMM).

Run standalone::

    python benchmarks/bench_shard_scaling.py            # full (PubMed)
    python benchmarks/bench_shard_scaling.py --smoke    # CI-sized (Cora)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import os
import pathlib
import platform
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.builder import build_cbm
from repro.graphs.datasets import load_dataset
from repro.parallel import ShardedPlan, ShardSupervisor, predict_cbm_spmm, shm
from repro.parallel.supervisor import _pool_context, unsupervised_execute
from repro.sparse.ops import spmm

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR8.json"

# Supervision cost is a fixed per-dispatch bookkeeping term (~100 us:
# breaker round-trip, wait() setup, epoch verification), so the p here
# must make a single execution large enough to amortise it the way real
# workloads do — at Cora p=8 an execution is ~1.5 ms and the fixed term
# alone reads as ~10% "overhead".  executions x passes are sized so the
# best-of-passes estimator is stable against scheduler noise.
FULL = dict(
    dataset="PubMed", alpha=0, variant="DAD", p=32, workers=(1, 2, 4, 8),
    executions=10, passes=4, seed=7, overhead_budget=0.10,
    speedup_floor=1.25, model_tolerance=0.60,
)
SMOKE = dict(
    dataset="Cora", alpha=0, variant="DAD", p=64, workers=(1, 2, 4),
    executions=16, passes=4, seed=7, overhead_budget=0.10,
    speedup_floor=1.15, model_tolerance=0.60,
)


def _calibrate(source, *, repeats: int = 20) -> float:
    """Ops/sec of a fixed reference SpMM (same estimator as PR 6/7)."""
    x = np.random.default_rng(0).standard_normal((source.shape[1], 16))
    x = x.astype(np.float32)
    spmm(source, x)  # warm
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        spmm(source, x)
        times.append(time.perf_counter() - t0)
    return 1.0 / min(times)


def _best_rps(fn, *, executions: int, passes: int) -> float:
    """Executions/sec, best of ``passes`` (minimum-noise estimator)."""
    best = 0.0
    for _ in range(passes):
        t0 = time.perf_counter()
        for _ in range(executions):
            fn()
        elapsed = time.perf_counter() - t0
        best = max(best, executions / elapsed if elapsed > 0 else 0.0)
    return best


def _paired_rps(raw_fn, sup_fn, *, executions: int, passes: int):
    """Best-of-passes rps for raw and supervised dispatch, interleaved.

    The two paths alternate pass by pass (R,S,R,S,...) so slow drift in
    background load hits both equally — measuring them in separate blocks
    on a busy box turns scheduler drift into fake supervision overhead.
    """
    raw_best = sup_best = 0.0
    for _ in range(passes):
        for fn, is_sup in ((raw_fn, False), (sup_fn, True)):
            t0 = time.perf_counter()
            for _ in range(executions):
                fn()
            elapsed = time.perf_counter() - t0
            rps = executions / elapsed if elapsed > 0 else 0.0
            if is_sup:
                sup_best = max(sup_best, rps)
            else:
                raw_best = max(raw_best, rps)
    return raw_best, sup_best


def run_workload(cfg: dict) -> dict:
    cfg = dict(cfg)
    dataset = cfg.pop("dataset")
    a = load_dataset(dataset)
    rng = np.random.default_rng(cfg["seed"])
    b = rng.standard_normal((a.shape[1], cfg["p"])).astype(np.float32)
    deg = a.row_nnz().astype(np.float64)
    diag = 1.0 / np.sqrt(deg + 1.0)
    calibration_rps = _calibrate(a)
    cpu = os.cpu_count() or 1
    num_shards = max(cfg["workers"])

    # Model prediction on the UNSHARDED plan: the simulated machine
    # models one kernel over the whole graph at k cores; sharding is the
    # process-world realisation of that same parallelism.
    cbm, _ = build_cbm(a, alpha=cfg["alpha"], variant=cfg["variant"], diag=diag)
    predicted = {
        w: predict_cbm_spmm(cbm, cfg["p"], cores=min(w, cpu)).total_s
        for w in cfg["workers"]
    }

    levels = []
    with ShardedPlan(
        a, num_shards=num_shards, variant=cfg["variant"], diag=diag
    ) as plan:
        # Reference result once; every measured path must reproduce it.
        expected = plan.execute_threaded(b)
        threads_rps = _best_rps(
            lambda: plan.execute_threaded(b),
            executions=cfg["executions"], passes=cfg["passes"],
        )
        for w in cfg["workers"]:
            # One context for BOTH pools: the supervisor spawns its pool
            # lazily, by which time the raw pool's management threads
            # would steer _pool_context() to forkserver — and comparing a
            # fork pool against a forkserver pool (different worker
            # memory layouts) reads as fake supervision overhead.
            ctx = _pool_context()
            with ProcessPoolExecutor(
                max_workers=w, mp_context=ctx
            ) as pool, ShardSupervisor(
                plan, workers=w, seed=cfg["seed"], mp_context=ctx
            ) as sup:
                def raw(pool=pool, w=w):
                    return unsupervised_execute(plan, b, workers=w, pool=pool)

                got = raw()  # warm: spawns workers, primes attach caches
                assert np.allclose(got, expected, rtol=1e-4, atol=1e-4)
                got = sup.execute(b)  # warm
                assert np.allclose(got, expected, rtol=1e-4, atol=1e-4)
                raw_rps, sup_rps = _paired_rps(
                    raw,
                    lambda: sup.execute(b),
                    executions=cfg["executions"], passes=cfg["passes"],
                )
                sup_stats = dict(sup.stats)
            levels.append(
                {
                    "concurrency": w,
                    "cores_used": min(w, cpu),
                    "threads_rps": threads_rps,
                    "raw_rps": raw_rps,
                    # Supervised numbers under "batched" for the
                    # regression gate (the guarded configuration).
                    "batched": {"rps": sup_rps},
                    "supervision_overhead": 1.0 - sup_rps / raw_rps,
                    "predicted_total_s": predicted[w],
                    "supervisor_stats": sup_stats,
                }
            )

    base = levels[0]
    for lv in levels:
        lv["measured_speedup"] = lv["batched"]["rps"] / base["batched"]["rps"]
        lv["predicted_speedup"] = (
            base["predicted_total_s"] / lv["predicted_total_s"]
        )
        lv["model_error"] = lv["measured_speedup"] / lv["predicted_speedup"] - 1.0

    at4 = next((lv for lv in levels if lv["concurrency"] >= 4), None)
    tol = cfg["model_tolerance"]
    checks = {
        "supervision_overhead": all(
            lv["supervision_overhead"] <= cfg["overhead_budget"] for lv in levels
        ),
        "process_speedup": (
            cpu < 4
            or at4 is None
            or at4["measured_speedup"] >= cfg["speedup_floor"]
        ),
        "model_agreement": all(abs(lv["model_error"]) <= tol for lv in levels),
        "no_shm_leak": len(shm.list_segments()) == 0,
    }
    return {
        "benchmark": "shard_scaling",
        "workload": {
            "dataset": dataset,
            "nodes": int(a.shape[0]),
            "nnz": int(a.nnz),
            "num_shards": num_shards,
            **cfg,
            "workers": list(cfg["workers"]),
        },
        "cpu_count": cpu,
        "calibration_rps": calibration_rps,
        "levels": levels,
        "checks": checks,
        "ok": all(checks.values()),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Shard scaling — {w['dataset']} (n={w['nodes']}, nnz={w['nnz']}, "
        f"{w['num_shards']} shards, p={w['p']}, {record['cpu_count']} cores, "
        f"calibration {record['calibration_rps']:.1f} spmm/s)",
    ]
    for lv in record["levels"]:
        lines.append(
            f"  {lv['concurrency']:2d} workers: threads {lv['threads_rps']:7.1f} "
            f"| raw {lv['raw_rps']:7.1f} | supervised {lv['batched']['rps']:7.1f} "
            f"exec/s (overhead {lv['supervision_overhead']:+.1%}) | "
            f"speedup {lv['measured_speedup']:.2f}x measured vs "
            f"{lv['predicted_speedup']:.2f}x predicted"
        )
    for key, ok in record["checks"].items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {key}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<60 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    args = ap.parse_args(argv)

    record = run_workload(SMOKE if args.smoke else FULL)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[written to {path}]")
    return 0 if record["ok"] else 1


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_supervised_execute(benchmark, rng):
    """One supervised no-fault execution of a 4-shard Cora plan."""
    a = load_dataset("Cora")
    deg = a.row_nnz().astype(np.float64)
    diag = 1.0 / np.sqrt(deg + 1.0)
    b = rng.standard_normal((a.shape[1], 8)).astype(np.float32)
    with ShardedPlan(a, num_shards=4, variant="DAD", diag=diag) as plan:
        with ShardSupervisor(plan, workers=2) as sup:
            sup.execute(b)  # warm: spawn pool, prime attach caches
            benchmark(lambda: sup.execute(b))


def test_report_shard_scaling(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("shard_scaling", render(record))
        assert record["ok"], record["checks"]

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
