"""Autotune benchmark — the never-slower guarantee, measured.

For every registry dataset plus the router-stressing mixed-structure
graph (disjoint cliques stitched to a shifted band — one half wants CBM,
the other CSR), this benchmark:

1. runs the full tune pipeline (calibrate the cost model, route per
   block, race pure-CSR / pure-CBM / hybrid candidates);
2. re-measures the *tuned* executor against freshly timed static CSR
   and static CBM kernels in an interleaved round-robin race, so slow
   machine-state drift cannot bias the comparison.

The acceptance bar has two sides:

* **never slower** — on every dataset the tuned executor must sit
  within ``slack`` (5%) of the best static format.  This is the
  structural claim: ``tune()`` serves whichever candidate actually won
  the race, so losing by more than measurement slack means the race or
  the executor is broken;
* **hybrid wins where it should** — on the mixed-structure graph the
  tuned (hybrid) executor must beat the best static format by at least
  ``mixed_win`` (10%), proving the per-block routing creates value a
  static choice cannot.

The record (``BENCH_PR10.json``) keeps ``check_regression.py``
compatibility: one pseudo-level per dataset (``concurrency`` is the
dataset's stable index) whose ``batched.rps`` is the tuned executor's
multiplies/sec, normalised by ``calibration_rps``.

Run standalone::

    python benchmarks/bench_autotune.py            # full (all datasets)
    python benchmarks/bench_autotune.py --smoke    # CI-sized subset

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.autotune import RouterPolicy, build_hybrid, tune
from repro.core.builder import build_cbm
from repro.graphs.datasets import REGISTRY, load_dataset
from repro.graphs.generators import mixed_structure_graph
from repro.sparse.ops import spmm

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR10.json"

#: The mixed-structure graph configuration: 64-cliques keep the clique
#: half deeply compressible while window=16/shift=7 gives the band half
#: a chain-deep tree that loses to CSR — the regime split the router
#: must find.  Sized so per-op work dominates per-call dispatch.
MIXED = dict(n=1536, clique_size=64, window=16, seed=0)

FULL = dict(
    datasets=list(REGISTRY),
    alpha=0,
    columns=16,
    repeats=7,
    race_rounds=9,
    slack=0.05,
    mixed_win=0.10,
)
SMOKE = dict(
    datasets=["Cora", "ca-HepPh"],
    alpha=0,
    columns=16,
    repeats=7,
    race_rounds=9,
    slack=0.05,
    mixed_win=0.10,
)


def _calibrate(repeats: int = 20) -> float:
    """Ops/sec of a fixed reference SpMM (same estimator as PR 6/7)."""
    a = load_dataset("Cora")
    x = np.random.default_rng(0).standard_normal((a.shape[1], 16))
    x = x.astype(np.float32)
    spmm(a, x)  # warm
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        spmm(a, x)
        times.append(time.perf_counter() - t0)
    return 1.0 / min(times)


def _race(a, cbm, report, columns: int, rounds: int) -> dict:
    """Interleaved best-of race: tuned executor vs both static kernels.

    One timing pass per candidate per round, round-robin — frequency
    scaling and background-thread noise hit every candidate equally
    instead of biasing whichever was measured in the quieter window.
    """
    rng = np.random.default_rng(1)
    b = rng.standard_normal((a.shape[1], columns)).astype(np.float32)
    plan = cbm.plan(update="level", scaling="deferred")
    cbm_out = plan.out_buffer(columns)
    hybrid = build_hybrid(cbm, a, report.decision, model=report.model)
    hout = (
        hybrid.pool.acquire((a.shape[0], columns), np.float32)
        if hybrid is not None
        else None
    )

    def tuned():
        if hybrid is not None:
            hybrid.matmul(b, out=hout)
        else:
            plan.execute(b, out=cbm_out)

    thunks = {"tuned": tuned, "csr": lambda: spmm(a, b)}
    if hybrid is not None:
        thunks["cbm"] = lambda: plan.execute(b, out=cbm_out)
    best: dict = {k: None for k in thunks}
    try:
        for _ in range(rounds):
            for key, fn in thunks.items():
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
                if best[key] is None or dt < best[key]:
                    best[key] = dt
    finally:
        plan.release(cbm_out)
        if hout is not None:
            hybrid.release(hout)
            hybrid.drain()
    # A pure-CBM route serves the CBM kernel itself; timing the same plan
    # under a second label would only double its cache warmth per round.
    best.setdefault("cbm", best["tuned"])
    return {k: float(v) for k, v in best.items()}


def _bench_graph(name, a, cfg: dict) -> dict:
    cbm, build_rep = build_cbm(a, alpha=cfg["alpha"])
    report = tune(
        a,
        cbm,
        cfg["columns"],
        policy=RouterPolicy(measure=True),
        repeats=cfg["repeats"],
    )
    race = _race(a, cbm, report, cfg["columns"], cfg["race_rounds"])
    best_static = min(race["csr"], race["cbm"])
    return {
        "dataset": name,
        "nodes": int(a.shape[0]),
        "nnz": int(a.nnz),
        "compression_ratio": float(build_rep.compression_ratio),
        "route": report.chosen,
        "blocks": len(report.decision.blocks),
        "tune_seconds": report.seconds,
        "tuned_s": race["tuned"],
        "csr_s": race["csr"],
        "cbm_s": race["cbm"],
        "best_static_s": best_static,
        "vs_best_static": race["tuned"] / best_static if best_static else None,
        "race_candidates": {k: float(v) for k, v in report.candidates.items()},
    }


def run_workload(cfg: dict) -> dict:
    calibration_rps = _calibrate()
    graphs = [(name, load_dataset(name)) for name in cfg["datasets"]]
    graphs.append((f"mixed({MIXED['n']})", mixed_structure_graph(**MIXED)))

    results = [_bench_graph(name, a, cfg) for name, a in graphs]
    mixed = results[-1]

    # check_regression.py compatibility: one pseudo-level per dataset,
    # keyed on the dataset's stable index, throughput = tuned exec/sec.
    levels = [
        {
            "concurrency": i,
            "dataset": r["dataset"],
            "batched": {"rps": 1.0 / r["tuned_s"] if r["tuned_s"] else 0.0},
            "route": r["route"],
            "vs_best_static": r["vs_best_static"],
        }
        for i, r in enumerate(results)
    ]

    checks = {
        "never_slower_within_slack": all(
            r["vs_best_static"] is not None
            and r["vs_best_static"] <= 1.0 + cfg["slack"]
            for r in results
        ),
        "mixed_graph_hybrid_route": mixed["route"] == "hybrid",
        "mixed_graph_speedup": (
            mixed["vs_best_static"] is not None
            and mixed["vs_best_static"] <= 1.0 - cfg["mixed_win"]
        ),
    }
    return {
        "benchmark": "autotune",
        "workload": {
            "dataset": "autotune-suite",
            "graphs": [r["dataset"] for r in results],
            "mixed": dict(MIXED),
            **{k: v for k, v in cfg.items() if k != "datasets"},
        },
        "calibration_rps": calibration_rps,
        "levels": levels,
        "results": results,
        "checks": checks,
        "ok": all(checks.values()),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Autotune never-slower sweep — p={w['columns']}, "
        f"slack {w['slack']:.0%}, mixed win >= {w['mixed_win']:.0%} "
        f"(calibration {record['calibration_rps']:.1f} spmm/s)",
    ]
    for r in record["results"]:
        lines.append(
            f"  {r['dataset']:20s} {r['route']:6s} ({r['blocks']:2d} blocks) "
            f"tuned {r['tuned_s'] * 1e6:8.1f} us | csr {r['csr_s'] * 1e6:8.1f} "
            f"| cbm {r['cbm_s'] * 1e6:8.1f} | vs best {r['vs_best_static']:.3f}x"
        )
    for key, ok in record["checks"].items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {key}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="CI-sized subset (<60 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    args = ap.parse_args(argv)

    record = run_workload(SMOKE if args.smoke else FULL)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[written to {path}]")
    return 0 if record["ok"] else 1


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_tune_wall_time(benchmark):
    """Wall time of one full tune (calibrate + route + race) on Cora."""
    a = load_dataset("Cora")
    cbm, _ = build_cbm(a, alpha=0)

    benchmark(
        lambda: tune(a, cbm, 16, policy=RouterPolicy(measure=True))
    )


def test_report_autotune(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("autotune", render(record))
        assert record["ok"], record["checks"]

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
