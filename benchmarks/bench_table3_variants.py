"""Table III — AX / ADX / DADX kernels at the paper's best alphas.

Benchmarks all three multiplication flavours for CSR and CBM, then prints
the Table III comparison with the paper's speedups alongside.
"""

import numpy as np
import pytest

from repro.bench.experiments import PAPER_BEST_ALPHA, run_table3
from repro.core.builder import build_cbm
from repro.graphs.datasets import load_dataset
from repro.sparse.ops import spmm

from conftest import ALL, FAST, write_report

P = 500


def _diag(n):
    return (np.random.default_rng(13).random(n) + 0.5).astype(np.float64)


@pytest.mark.parametrize("variant", ["A", "AD", "DAD"])
@pytest.mark.parametrize("name", FAST)
def test_cbm_variant_kernel(benchmark, name, variant, rng):
    a = load_dataset(name)
    alpha = PAPER_BEST_ALPHA[name][0]
    diag = None if variant == "A" else _diag(a.shape[0])
    cbm, _ = build_cbm(a, alpha=alpha, variant=variant, diag=diag)
    x = rng.random((a.shape[1], P), dtype=np.float64).astype(np.float32)
    benchmark(lambda: cbm.matmul(x))


@pytest.mark.parametrize("variant", ["A", "AD", "DAD"])
@pytest.mark.parametrize("name", FAST)
def test_csr_variant_kernel(benchmark, name, variant, rng):
    a = load_dataset(name)
    if variant != "A":
        d = _diag(a.shape[0])
        a = a.scale_columns(d)
        if variant == "DAD":
            a = a.scale_rows(d)
    x = rng.random((a.shape[1], P), dtype=np.float64).astype(np.float32)
    benchmark(lambda: spmm(a, x))


def test_report_table3(benchmark):
    def run():
        _, text = run_table3(datasets=ALL, p=P, measure_wall=False)
        write_report("table3_variants", text)

    benchmark.pedantic(run, rounds=1, iterations=1)



def _smoke() -> None:
    a = load_dataset("Cora")
    x = np.random.default_rng(0).random((a.shape[1], 8)).astype(np.float32)
    for variant in ("A", "AD", "DAD"):
        diag = None if variant == "A" else _diag(a.shape[0])
        cbm, _ = build_cbm(a, alpha=2, variant=variant, diag=diag)
        cbm.matmul(x)


def _full() -> None:
    _, text = run_table3(datasets=ALL, p=P, measure_wall=False)
    write_report("table3_variants", text)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("table 3 variants", _smoke, _full))
