"""Runtime plan benchmark — planned vs unplanned repeated CBM products.

The GCN serving hot path multiplies the same ``Â`` against dense features
every layer of every forward pass; the :mod:`repro.runtime` plan/execute
split amortises the schedule construction (level grouping, branch
decomposition, scaled operand, SciPy handle, diagonal tables) across all
of them.  This benchmark measures the gap on a GCN-shaped workload
(2 layers × many forwards) and records it in ``BENCH_PR1.json`` so the
perf trajectory accumulates across PRs.

Run standalone::

    python benchmarks/bench_runtime_plan.py            # full workload
    python benchmarks/bench_runtime_plan.py --smoke    # CI-sized (<5 s)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.gnn.adjacency import CBMAdjacency, CSRAdjacency, make_operator
from repro.gnn.gcn import two_layer_gcn_inference
from repro.graphs.datasets import load_dataset
from repro.utils.timing import measure

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR1.json"

FULL = dict(dataset="COLLAB", alpha=4, p=64, hidden=64, classes=16, forwards=20)
SMOKE = dict(dataset="Cora", alpha=2, p=32, hidden=16, classes=4, forwards=5)


class UnplannedCBMAdjacency:
    """CBM operator forced through the per-call reference path.

    Same matrix, same kernels — but the schedule (level grouping, diag
    broadcast, SciPy wrapper) is recomputed on every product, which is
    exactly what ``CBMMatrix.matmul`` did before the runtime split.
    """

    def __init__(self, cbm: CBMMatrix):
        self.cbm = cbm

    @property
    def n(self) -> int:
        return self.cbm.n

    def matmul(self, x: np.ndarray) -> np.ndarray:
        return self.cbm.matmul_unplanned(x.astype(np.float32, copy=False))


def _weights(rng, p, hidden, classes):
    w0 = (rng.random((p, hidden)) - 0.5).astype(np.float32) / np.sqrt(p)
    w1 = (rng.random((hidden, classes)) - 0.5).astype(np.float32) / np.sqrt(hidden)
    return w0, w1


def run_workload(cfg: dict, *, repeats: int | None = None) -> dict:
    """Time planned vs unplanned repeated GCN inference; return the record."""
    a = load_dataset(cfg["dataset"])
    rng = np.random.default_rng(7)
    x = rng.random((a.shape[0], cfg["p"])).astype(np.float32)
    w0, w1 = _weights(rng, cfg["p"], cfg["hidden"], cfg["classes"])

    planned = make_operator(a, "cbm", alpha=cfg["alpha"])
    assert isinstance(planned, CBMAdjacency)
    unplanned = UnplannedCBMAdjacency(planned.cbm)
    baseline = CSRAdjacency.from_graph(a)

    forwards = cfg["forwards"]
    repeats = repeats if repeats is not None else 3

    def burst(op):
        for _ in range(forwards):
            two_layer_gcn_inference(op, x, w0, w1)

    # Warm everything (plan build, SciPy handles, BLAS) outside the timers.
    burst(planned)
    two_layer_gcn_inference(unplanned, x, w0, w1)
    two_layer_gcn_inference(baseline, x, w0, w1)

    t_planned = measure(lambda: burst(planned), min_repeats=repeats, max_repeats=repeats)
    t_unplanned = measure(lambda: burst(unplanned), min_repeats=repeats, max_repeats=repeats)
    t_csr = measure(lambda: burst(baseline), min_repeats=repeats, max_repeats=repeats)

    plan = planned.cbm.plan()
    return {
        "benchmark": "runtime_plan",
        "workload": {
            "shape": "2-layer GCN inference x repeated forwards",
            **cfg,
            "nodes": int(a.shape[0]),
            "nnz": int(a.nnz),
        },
        "planned_s": t_planned.mean,
        "unplanned_s": t_unplanned.mean,
        "csr_baseline_s": t_csr.mean,
        "per_forward_planned_s": t_planned.mean / forwards,
        "per_forward_unplanned_s": t_unplanned.mean / forwards,
        "speedup_planned_vs_unplanned": t_unplanned.mean / t_planned.mean,
        "speedup_planned_vs_csr": t_csr.mean / t_planned.mean,
        "plan": {
            "levels": plan.levels,
            "branches": len(plan.branches),
            "operand_nnz": int(plan.operand.nnz),
            "build_seconds": plan.stats.build_seconds,
            "executions": plan.stats.executions,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Runtime plan benchmark — {w['dataset']} "
        f"(n={w['nodes']}, alpha={w['alpha']}, p={w['p']}, "
        f"{w['forwards']} forwards/burst)",
        f"  planned    {record['per_forward_planned_s'] * 1e3:8.3f} ms/forward",
        f"  unplanned  {record['per_forward_unplanned_s'] * 1e3:8.3f} ms/forward",
        f"  CSR        {record['csr_baseline_s'] / w['forwards'] * 1e3:8.3f} ms/forward",
        f"  planned vs unplanned: {record['speedup_planned_vs_unplanned']:.2f}x",
        f"  planned vs CSR:       {record['speedup_planned_vs_csr']:.2f}x",
        f"  plan: {record['plan']['levels']} levels, "
        f"{record['plan']['branches']} branches, "
        f"built in {record['plan']['build_seconds'] * 1e3:.2f} ms",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<5 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    ap.add_argument("--repeats", type=int, default=None, help="timing repeats per burst")
    args = ap.parse_args(argv)

    cfg = dict(SMOKE if args.smoke else FULL)
    record = run_workload(cfg, repeats=args.repeats)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[written to {path}]")
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_planned_gcn_forward(benchmark, rng):
    a = load_dataset("Cora")
    op = make_operator(a, "cbm", alpha=2)
    x = rng.random((a.shape[0], 32), dtype=np.float64).astype(np.float32)
    w0, w1 = _weights(np.random.default_rng(7), 32, 16, 4)
    two_layer_gcn_inference(op, x, w0, w1)  # build the plan outside the timer
    benchmark(lambda: two_layer_gcn_inference(op, x, w0, w1))


def test_unplanned_gcn_forward(benchmark, rng):
    a = load_dataset("Cora")
    op = make_operator(a, "cbm", alpha=2)
    unplanned = UnplannedCBMAdjacency(op.cbm)
    x = rng.random((a.shape[0], 32), dtype=np.float64).astype(np.float32)
    w0, w1 = _weights(np.random.default_rng(7), 32, 16, 4)
    benchmark(lambda: two_layer_gcn_inference(unplanned, x, w0, w1))


def test_report_runtime_plan(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("runtime_plan", render(record))

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
