"""Table I — dataset statistics.

Benchmarks the dataset generators and the statistics kernels, then prints
the Table I comparison (stand-in vs paper numbers).
"""

import pytest

from repro.bench.experiments import run_table1
from repro.graphs.datasets import REGISTRY, load_dataset
from repro.graphs.stats import average_clustering_coefficient, compute_stats

from conftest import FAST, write_report


@pytest.mark.parametrize("name", FAST)
def test_generate_dataset(benchmark, name):
    spec = REGISTRY[name]
    benchmark(spec.build)


@pytest.mark.parametrize("name", FAST)
def test_stats_without_clustering(benchmark, name):
    a = load_dataset(name)
    benchmark(lambda: compute_stats(a, clustering=False))


@pytest.mark.parametrize("name", ("Cora", "ca-HepPh"))
def test_clustering_coefficient(benchmark, name):
    """The paper notes this costs about as much as CBM compression."""
    a = load_dataset(name)
    benchmark(lambda: average_clustering_coefficient(a))


def test_report_table1(benchmark):
    def run():
        _, text = run_table1()
        write_report("table1_datasets", text)

    benchmark.pedantic(run, rounds=1, iterations=1)



def _smoke() -> None:
    a = load_dataset("Cora")
    compute_stats(a, clustering=False)
    average_clustering_coefficient(a)


def _full() -> None:
    _, text = run_table1()
    write_report("table1_datasets", text)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("table 1 datasets", _smoke, _full))
