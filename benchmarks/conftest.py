"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's exhibits: the
pytest-benchmark entries time the underlying kernels, and each module's
``test_report_*`` function renders the paper-shaped comparison table to
stdout and to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np
import pytest

from repro.graphs.datasets import load_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Datasets ordered small to large; heavy benchmarks use the FAST subset.
ALL = (
    "Cora",
    "PubMed",
    "ca-HepPh",
    "ca-AstroPh",
    "ogbn-proteins",
    "COLLAB",
    "coPapersDBLP",
    "coPapersCiteseer",
)
FAST = ("Cora", "ca-HepPh", "COLLAB")


def write_report(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def read_report(name: str) -> str | None:
    """Load a previously rendered table, tolerating its absence.

    A fresh clone (or a CI runner) has no ``benchmarks/results/*.txt``
    yet; consumers must treat ``None`` as "skip with a note" rather than
    erroring out.
    """
    path = RESULTS_DIR / f"{name}.txt"
    if not path.exists():
        print(f"[missing {path} — run the matching bench_* module to generate it; skipping]")
        return None
    return path.read_text()


def run_smoke_cli(description: str, smoke_fn, full_fn=None, argv=None) -> int:
    """Shared ``--smoke`` entry point for the ``bench_*`` scripts.

    Every benchmark module is executable standalone; ``--smoke`` runs a
    tiny fixed workload (CI executes all of them in a few seconds) while
    the default runs the module's full report path.
    """
    ap = argparse.ArgumentParser(description=description)
    ap.add_argument(
        "--smoke", action="store_true", help="run a tiny CI-sized workload (<~1 s)"
    )
    args = ap.parse_args(argv)
    use_smoke = args.smoke or full_fn is None
    t0 = time.perf_counter()
    (smoke_fn if use_smoke else full_fn)()
    mode = "smoke" if use_smoke else "full"
    print(f"[{description}: {mode} run ok in {time.perf_counter() - t0:.2f}s]")
    return 0


@pytest.fixture(autouse=True)
def shm_leak_check():
    """Fail any benchmark that leaks a ``repro-shm-*`` segment.

    Stale segments from previously *killed* runs are swept before the
    test (they are debris, not this test's bug); anything still present
    afterwards was created and not released by the test body — exactly
    the leak the shard executor's registry/atexit hygiene exists to
    prevent, so it fails loudly here instead of filling /dev/shm in CI.
    """
    from repro.parallel import shm

    # min_age_s=0: on a CI runner any dead-pid segment is debris from a
    # crashed earlier run, however young — no sibling-namespace caveat.
    shm.sweep_stale(min_age_s=0.0)
    yield
    leaked = shm.list_segments()
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2025)


@pytest.fixture(scope="session", params=FAST)
def fast_dataset(request):
    """(name, adjacency) pairs for the timing-heavy benchmarks."""
    return request.param, load_dataset(request.param)
