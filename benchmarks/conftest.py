"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's exhibits: the
pytest-benchmark entries time the underlying kernels, and each module's
``test_report_*`` function renders the paper-shaped comparison table to
stdout and to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.graphs.datasets import load_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Datasets ordered small to large; heavy benchmarks use the FAST subset.
ALL = (
    "Cora",
    "PubMed",
    "ca-HepPh",
    "ca-AstroPh",
    "ogbn-proteins",
    "COLLAB",
    "coPapersDBLP",
    "coPapersCiteseer",
)
FAST = ("Cora", "ca-HepPh", "COLLAB")


def write_report(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2025)


@pytest.fixture(scope="session", params=FAST)
def fast_dataset(request):
    """(name, adjacency) pairs for the timing-heavy benchmarks."""
    return request.param, load_dataset(request.param)
