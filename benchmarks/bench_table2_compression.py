"""Table II — CBM construction time and compression ratio (alpha 0 / 32).

Benchmarks the full compression pipeline per dataset and alpha, plus its
stages (candidate generation, spanning structure, delta extraction), then
prints the Table II comparison.
"""

import pytest

from repro.bench.experiments import run_table2
from repro.core.arborescence import minimum_arborescence
from repro.core.builder import build_cbm
from repro.core.deltas import build_delta_matrix
from repro.core.distance import candidate_edges
from repro.core.mst import kruskal_mst
from repro.graphs.datasets import load_dataset

from conftest import FAST, write_report


@pytest.mark.parametrize("alpha", [0, 32])
@pytest.mark.parametrize("name", FAST)
def test_build_cbm(benchmark, name, alpha):
    a = load_dataset(name)
    benchmark(lambda: build_cbm(a, alpha=alpha))


@pytest.mark.parametrize("name", FAST)
def test_stage_candidate_edges(benchmark, name):
    a = load_dataset(name)
    benchmark(lambda: candidate_edges(a, None))


@pytest.mark.parametrize("name", FAST)
def test_stage_mst(benchmark, name):
    a = load_dataset(name)
    g = candidate_edges(a, None)
    benchmark(lambda: kruskal_mst(g))


@pytest.mark.parametrize("name", ("Cora", "ca-HepPh"))
def test_stage_arborescence(benchmark, name):
    a = load_dataset(name)
    g = candidate_edges(a, 8)
    benchmark(lambda: minimum_arborescence(g))


@pytest.mark.parametrize("name", FAST)
def test_stage_delta_extraction(benchmark, name):
    a = load_dataset(name)
    tree = kruskal_mst(candidate_edges(a, None))
    benchmark(lambda: build_delta_matrix(a, tree))


def test_report_table2(benchmark):
    def run():
        _, text = run_table2()
        write_report("table2_compression", text)

    benchmark.pedantic(run, rounds=1, iterations=1)



def _smoke() -> None:
    a = load_dataset("Cora")
    for alpha in (0, 32):
        build_cbm(a, alpha=alpha)


def _full() -> None:
    _, text = run_table2()
    write_report("table2_compression", text)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("table 2 compression", _smoke, _full))
