"""Table IV — two-layer GCN inference, CSR vs CBM.

Benchmarks the paper's exact inference expression Â σ(Â X W⁰) W¹ with the
adjacency held in each format, plus the training-step extension, then
prints the Table IV comparison.
"""

import numpy as np
import pytest

from repro.bench.experiments import PAPER_BEST_ALPHA, run_table4
from repro.gnn.adjacency import make_operator
from repro.gnn.data import synthetic_node_classification
from repro.gnn.gcn import GCN, two_layer_gcn_inference
from repro.gnn.train import cross_entropy
from repro.graphs.datasets import load_dataset

from conftest import ALL, FAST, write_report

P = 500


def _weights(rng, p):
    w0 = (rng.random((p, p), dtype=np.float64).astype(np.float32) - 0.5) / np.sqrt(p)
    w1 = (rng.random((p, p), dtype=np.float64).astype(np.float32) - 0.5) / np.sqrt(p)
    return w0, w1


@pytest.mark.parametrize("kind", ["csr", "cbm"])
@pytest.mark.parametrize("name", FAST)
def test_gcn_inference(benchmark, name, kind, rng):
    a = load_dataset(name)
    alpha = PAPER_BEST_ALPHA[name][0]
    op = make_operator(a, kind, alpha=alpha)
    x = rng.random((a.shape[0], P), dtype=np.float64).astype(np.float32)
    w0, w1 = _weights(rng, P)
    benchmark(lambda: two_layer_gcn_inference(op, x, w0, w1))


@pytest.mark.parametrize("kind", ["csr", "cbm"])
def test_gcn_training_step(benchmark, kind):
    """Future-work extension: one forward+backward through Â in each format."""
    task = synthetic_node_classification(1500, classes=4, feature_dim=64, seed=0)
    op = make_operator(task.adjacency, kind, alpha=4)
    model = GCN([64, 64, 4], seed=1, requires_grad=True)

    def step():
        logits = model.forward(op, task.features)
        _, grad = cross_entropy(logits, task.labels, task.train_mask)
        model.backward(op, grad)

    benchmark(step)


def test_report_table4(benchmark):
    def run():
        _, text = run_table4(datasets=ALL, p=P, measure_wall=False)
        write_report("table4_gcn", text)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_training_extension(benchmark):
    def run():
        from repro.bench.experiments import run_training_table

        _, text = run_training_table()
        write_report("training_extension", text)

    benchmark.pedantic(run, rounds=1, iterations=1)


def _smoke() -> None:
    a = load_dataset("Cora")
    rng = np.random.default_rng(0)
    x = rng.random((a.shape[0], 16)).astype(np.float32)
    w0, w1 = _weights(rng, 16)
    for kind in ("csr", "cbm"):
        op = make_operator(a, kind, alpha=2)
        two_layer_gcn_inference(op, x, w0, w1)


def _full() -> None:
    _, text = run_table4(datasets=ALL, p=P, measure_wall=False)
    write_report("table4_gcn", text)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("table 4 GCN inference", _smoke, _full))
