"""Sensitivity sweeps — one structural knob at a time (beyond the paper).

The paper's Table V correlates compression with clustering across eight
fixed graphs; these controlled sweeps isolate the mechanisms (clustering,
degree, row duplication, noise) on synthetic inputs.
"""

import pytest

from repro.bench.sensitivity import (
    blowup_graph,
    sweep_closure,
    sweep_degree,
    sweep_duplication,
    sweep_noise,
)
from repro.core.builder import build_cbm
from repro.utils.fmt import format_table

from conftest import write_report


def test_compress_blowup_graph(benchmark):
    a = blowup_graph(300, 4, 12.0, seed=0)
    benchmark(lambda: build_cbm(a, alpha=0))


@pytest.mark.parametrize("closure", [0.0, 0.6])
def test_compress_across_closure(benchmark, closure):
    from repro.graphs.generators import citation_graph

    a = citation_graph(1500, 10.0, closure=closure, seed=0)
    benchmark(lambda: build_cbm(a, alpha=0))


def test_report_sensitivity(benchmark):
    def run():
        sections = []
        rows = sweep_closure()
        sections.append(
            format_table(
                ["closure", "clustering", "ratio"],
                [[f"{r['closure']:.1f}", f"{r['clustering']:.2f}", f"{r['ratio']:.2f}"] for r in rows],
                title="Sensitivity — triadic closure (fixed degree 10)",
            )
        )
        rows = sweep_degree()
        sections.append(
            format_table(
                ["avg_degree", "ratio"],
                [[f"{r['avg_degree']:.1f}", f"{r['ratio']:.2f}"] for r in rows],
                title="Sensitivity — degree on Erdős–Rényi (no shared structure)",
            )
        )
        rows = sweep_duplication()
        sections.append(
            format_table(
                ["replication", "nnz", "ratio"],
                [[r["replication"], r["nnz"], f"{r['ratio']:.2f}"] for r in rows],
                title="Sensitivity — row replication (CBM best case; ratio -> r)",
            )
        )
        rows = sweep_noise()
        sections.append(
            format_table(
                ["flips_per_row", "clustering", "ratio"],
                [[r["flips_per_row"], f"{r['clustering']:.2f}", f"{r['ratio']:.2f}"] for r in rows],
                title="Sensitivity — noise on disjoint cliques",
            )
        )
        write_report("sensitivity", "\n\n".join(sections))

    benchmark.pedantic(run, rounds=1, iterations=1)


def _smoke() -> None:
    a = blowup_graph(60, 2, 6.0, seed=0)
    build_cbm(a, alpha=0)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("sensitivity sweeps", _smoke))
