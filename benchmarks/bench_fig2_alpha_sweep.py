"""Figure 2 — AX speedup and compression ratio vs alpha, per dataset.

Benchmarks the two competing kernels (CSR SpMM baseline and CBM SpMM) at
several alphas, then prints the full Figure 2 grid: measured sequential
wall-clock speedup, scalar-operation ratio, and modelled 1-core/16-core
speedups at paper scale.
"""

import numpy as np
import pytest

from repro.bench.experiments import run_figure2
from repro.core.builder import build_cbm
from repro.graphs.datasets import load_dataset
from repro.sparse.ops import spmm

from conftest import ALL, FAST, write_report

P = 500
ALPHAS = (0, 2, 8, 32)


@pytest.fixture(scope="module")
def operand(rng):
    def make(a):
        return rng.random((a.shape[1], P), dtype=np.float64).astype(np.float32)

    return make


@pytest.mark.parametrize("name", FAST)
def test_csr_spmm_baseline(benchmark, name, operand):
    a = load_dataset(name)
    x = operand(a)
    benchmark(lambda: spmm(a, x))


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("name", FAST)
def test_cbm_spmm(benchmark, name, alpha, operand):
    a = load_dataset(name)
    cbm, _ = build_cbm(a, alpha=alpha)
    x = operand(a)
    benchmark(lambda: cbm.matmul(x))


def test_report_figure2(benchmark):
    def run():
        rows, text = run_figure2(datasets=ALL, alphas=(0, 1, 2, 4, 8, 16, 32), p=P, measure_wall=False)
        write_report("figure2_alpha_sweep", text)

    benchmark.pedantic(run, rounds=1, iterations=1)



def _smoke() -> None:
    run_figure2(datasets=("Cora",), alphas=(0, 2), p=8, measure_wall=False)


def _full() -> None:
    _, text = run_figure2(datasets=ALL, alphas=(0, 1, 2, 4, 8, 16, 32), p=P, measure_wall=False)
    write_report("figure2_alpha_sweep", text)


if __name__ == "__main__":
    from conftest import run_smoke_cli

    raise SystemExit(run_smoke_cli("figure 2 alpha sweep", _smoke, _full))
