"""Micro-batched serving benchmark — batched vs unbatched throughput.

Drives two :class:`~repro.serving.InferenceService` instances over the
same adjacency and GCN weights — one with the micro-batching stage
(:class:`~repro.serving.BatchConfig`), one without — with closed-loop
concurrent clients at several concurrency levels, and records
requests/sec, p50/p99 latency, and batch-formation counters in
``BENCH_PR6.json``:

* the full workload is the paper's two-layer GCN forward on COLLAB; the
  acceptance bar is **>= 3x requests/sec** for the batched service at 64
  concurrent clients with p99 still inside the request deadline budget;
* every record carries ``calibration_rps`` — the rate of a fixed
  reference SpMM measured on the same machine — so the regression gate
  (``benchmarks/check_regression.py``) can compare *normalized*
  throughput across machines of different speeds.

Run standalone::

    python benchmarks/bench_serving_batch.py            # full (COLLAB GCN)
    python benchmarks/bench_serving_batch.py --smoke    # CI-sized (Cora)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import threading
import time

import numpy as np

from repro.graphs.datasets import load_dataset
from repro.serving import AdjacencySlot, BatchConfig, InferenceService
from repro.sparse.ops import spmm

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR6.json"

# Per-request feature blocks are narrow (p=2), as in per-entity serving
# lookups: each request pays the fixed cost of streaming the compressed
# sparse structure, which is exactly what stacking amortises (the CBM
# SpMM at 64 columns costs ~9x its 1-column run, not 64x).  The hidden
# width stays small so the second stacked SpMM (members x hidden
# columns) does not swamp the amortisation.  Each mode is driven
# ``passes`` times and the best pass is recorded — the minimum-noise
# estimator (pytest-benchmark's ``min``) applied identically to both
# modes, which matters on single-core CI runners with scheduler jitter.
FULL = dict(
    dataset="COLLAB", alpha=2, concurrency=(4, 16, 64), requests_per_client=10,
    p=2, hidden=2, classes=2, deadline_s=2.0, workers=2, passes=3,
    max_columns=64, latency_budget_s=0.002, speedup_target=3.0,
    target_level=64, seed=11,
)
SMOKE = dict(
    dataset="Cora", alpha=0, concurrency=(4, 16), requests_per_client=6,
    p=2, hidden=2, classes=2, deadline_s=2.0, workers=2, passes=2,
    max_columns=64, latency_budget_s=0.002, speedup_target=None,
    target_level=16, seed=11,
)


def _calibrate(source, *, repeats: int = 20) -> float:
    """Ops/sec of a fixed reference SpMM on this machine.

    The same kernel the degraded tier serves with, at a fixed width, so
    the number moves with the machine, not with the serving code —
    dividing a measured requests/sec by it yields a machine-portable
    throughput the regression gate can compare across runners.  The
    rate comes from the *minimum* observed time (the same minimum-noise
    estimator the level passes use): a mean here would leak scheduler
    jitter straight into the gate's normalised metric.
    """
    x = np.random.default_rng(0).standard_normal((source.shape[1], 16))
    x = x.astype(np.float32)
    spmm(source, x)  # warm
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        spmm(source, x)
        times.append(time.perf_counter() - t0)
    return 1.0 / min(times)


def _drive(
    service: InferenceService,
    operands: list[np.ndarray],
    *,
    clients: int,
    requests_per_client: int,
    deadline_s: float,
) -> dict:
    """Closed-loop load: each client submits, waits, repeats."""
    lock = threading.Lock()
    latencies: list[float] = []
    errors = [0]
    # All clients block on the barrier until the last thread has started,
    # so thread-creation time stays out of the measured window.
    barrier = threading.Barrier(clients + 1)

    def client(k: int) -> None:
        barrier.wait()
        for i in range(requests_per_client):
            x = operands[(k * requests_per_client + i) % len(operands)]
            t0 = time.perf_counter()
            try:
                service.submit(x, deadline_s=deadline_s).result(deadline_s + 10.0)
            except Exception:
                with lock:
                    errors[0] += 1
                continue
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)

    threads = [
        threading.Thread(target=client, args=(k,), name=f"bench-client-{k}")
        for k in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "clients": clients,
        "completed": int(lat.size),
        "errors": errors[0],
        "elapsed_s": elapsed,
        "rps": float(lat.size / elapsed) if elapsed > 0 else 0.0,
        "p50_ms": float(np.percentile(lat, 50) * 1e3) if lat.size else None,
        "p99_ms": float(np.percentile(lat, 99) * 1e3) if lat.size else None,
    }


def run_workload(cfg: dict) -> dict:
    cfg = dict(cfg)
    dataset = cfg.pop("dataset")
    a = load_dataset(dataset)
    rng = np.random.default_rng(cfg["seed"])
    n = a.shape[0]
    p, hidden, classes = cfg["p"], cfg["hidden"], cfg["classes"]
    weights = (
        rng.standard_normal((p, hidden)).astype(np.float32) / np.sqrt(p),
        rng.standard_normal((hidden, classes)).astype(np.float32) / np.sqrt(hidden),
    )
    operands = [
        rng.standard_normal((n, p)).astype(np.float32) for _ in range(16)
    ]
    slot_template = AdjacencySlot.from_graph(a, alpha=cfg["alpha"], normalized=True)
    calibration_rps = _calibrate(slot_template.source)

    levels = []
    for clients in cfg["concurrency"]:
        capacity = max(128, 2 * clients)
        results = {}
        for mode in ("unbatched", "batched"):
            slot = AdjacencySlot(
                slot_template.cbm, slot_template.source
            )
            service = InferenceService(
                slot,
                workers=cfg["workers"],
                queue_capacity=capacity,
                default_deadline_s=cfg["deadline_s"],
                weights=weights,
                batch=(
                    BatchConfig(
                        max_columns=cfg["max_columns"],
                        latency_budget_s=cfg["latency_budget_s"],
                    )
                    if mode == "batched"
                    else None
                ),
                seed=cfg["seed"],
            )
            with service:
                # Warm the plan + workspace pool (and, batched, the batch
                # formation path) with a concurrent burst outside the timer.
                warm = [service.submit(operands[i % len(operands)]) for i in range(32)]
                for fut in warm:
                    fut.result(60.0)
                passes = [
                    _drive(
                        service,
                        operands,
                        clients=clients,
                        requests_per_client=cfg["requests_per_client"],
                        deadline_s=cfg["deadline_s"],
                    )
                    for _ in range(cfg["passes"])
                ]
                best = max(passes, key=lambda r: r["rps"])
                best["pass_rps"] = [round(r["rps"], 1) for r in passes]
                best["errors"] = sum(r["errors"] for r in passes)
                results[mode] = best
                stats = service.stats.snapshot()
            if mode == "batched":
                results[mode]["batches"] = stats["batches"]
                results[mode]["coalesced"] = stats["coalesced"]
                results[mode]["mean_batch"] = (
                    stats["completed"] / stats["batches"] if stats["batches"] else 0.0
                )
        speedup = (
            results["batched"]["rps"] / results["unbatched"]["rps"]
            if results["unbatched"]["rps"]
            else 0.0
        )
        levels.append(
            {
                "concurrency": clients,
                "unbatched": results["unbatched"],
                "batched": results["batched"],
                "speedup": speedup,
            }
        )

    target = cfg["speedup_target"]
    target_level = next(
        (lv for lv in levels if lv["concurrency"] == cfg["target_level"]),
        levels[-1],
    )
    total_errors = sum(
        lv[m]["errors"] for lv in levels for m in ("unbatched", "batched")
    )
    deadline_ms = cfg["deadline_s"] * 1e3
    p99_ok = all(
        lv["batched"]["p99_ms"] is not None and lv["batched"]["p99_ms"] <= deadline_ms
        for lv in levels
    )
    checks = {
        "zero_errors": total_errors == 0,
        "coalescing_effective": all(
            lv["batched"]["coalesced"] > 0 for lv in levels
        ),
        "p99_within_deadline": p99_ok,
        "speedup_target_met": (
            True if target is None else target_level["speedup"] >= target
        ),
    }
    return {
        "benchmark": "serving_batch",
        "workload": {
            "dataset": dataset,
            "nodes": n,
            "nnz": a.nnz,
            **cfg,
            "concurrency": list(cfg["concurrency"]),
        },
        "calibration_rps": calibration_rps,
        "levels": levels,
        "checks": checks,
        "ok": all(checks.values()),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Micro-batched serving — {w['dataset']} GCN (n={w['nodes']}, "
        f"p={w['p']}->{w['hidden']}->{w['classes']}, "
        f"batch<={w['max_columns']} cols, budget "
        f"{w['latency_budget_s'] * 1e3:.1f}ms, calibration "
        f"{record['calibration_rps']:.1f} spmm/s)",
    ]
    for lv in record["levels"]:
        u, b = lv["unbatched"], lv["batched"]
        lines.append(
            f"  {lv['concurrency']:3d} clients: unbatched {u['rps']:8.1f} rps "
            f"(p99 {u['p99_ms']:8.2f} ms) | batched {b['rps']:8.1f} rps "
            f"(p99 {b['p99_ms']:8.2f} ms, mean batch {b['mean_batch']:.1f}) "
            f"| speedup {lv['speedup']:.2f}x"
        )
    for key, ok in record["checks"].items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {key}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<60 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    args = ap.parse_args(argv)

    record = run_workload(SMOKE if args.smoke else FULL)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[written to {path}]")
    return 0 if record["ok"] else 1


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_batched_round_trip(benchmark, rng):
    """Round-trip latency of one request through a batched service."""
    a = load_dataset("Cora")
    slot = AdjacencySlot.from_graph(a, alpha=2)
    x = rng.random((a.shape[0], 4), dtype=np.float64).astype(np.float32)
    with InferenceService(
        slot, workers=2, batch=BatchConfig(latency_budget_s=0.001)
    ) as svc:
        svc.submit(x).result(10.0)  # warm plan + pool outside the timer
        benchmark(lambda: svc.submit(x).result(10.0))


def test_report_serving_batch(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("serving_batch", render(record))
        assert record["ok"], record["checks"]

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
