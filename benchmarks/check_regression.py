"""CI perf-regression gate for the micro-batched serving benchmark.

Compares a freshly measured ``bench_serving_batch`` record against a
committed baseline and fails (exit 1) when batched throughput regressed
by more than ``--max-regression`` (default 15%).

Records are compared level-by-level, keyed on ``(dataset, concurrency)``
— a level present in only one record is reported and skipped, and the
gate fails when *zero* levels are comparable (a silent "nothing matched,
nothing failed" pass is itself a regression of the gate).

Throughput is **calibration-normalised** by default: each record carries
``calibration_rps`` — the rate of a fixed reference SpMM measured on the
same machine just before the levels ran — so the quantity compared is
``rps / calibration_rps``, a machine-portable "requests per reference
SpMM".  A CI runner that is simply slower than the machine that produced
the baseline scales both numbers equally and passes; an actual serving-
layer slowdown moves only the numerator and fails.  ``--absolute``
compares raw requests/sec instead (useful when both records came from
the same machine).

Usage::

    python benchmarks/check_regression.py \
        --current BENCH_PR6.json \
        --baseline benchmarks/baselines/serving_batch_smoke.json
"""

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent / "baselines" / "serving_batch_smoke.json"
)
DEFAULT_MAX_REGRESSION = 0.15


def _normalized(record: dict, level: dict, *, absolute: bool) -> float:
    rps = float(level["batched"]["rps"])
    if absolute:
        return rps
    calibration = float(record["calibration_rps"])
    if calibration <= 0:
        raise ValueError("record has non-positive calibration_rps")
    return rps / calibration


def _levels_by_key(record: dict) -> dict:
    dataset = record["workload"]["dataset"]
    return {(dataset, int(lv["concurrency"])): lv for lv in record["levels"]}


def compare(
    current: dict,
    baseline: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    absolute: bool = False,
) -> dict:
    """Compare two bench records; returns a report dict with ``ok``."""
    cur_levels = _levels_by_key(current)
    base_levels = _levels_by_key(baseline)
    rows = []
    failures = []
    for key in sorted(base_levels):
        if key not in cur_levels:
            rows.append({"key": list(key), "status": "missing-in-current"})
            continue
        base_val = _normalized(baseline, base_levels[key], absolute=absolute)
        cur_val = _normalized(current, cur_levels[key], absolute=absolute)
        if base_val <= 0:
            rows.append({"key": list(key), "status": "empty-baseline"})
            continue
        change = cur_val / base_val - 1.0
        regressed = change < -max_regression
        rows.append(
            {
                "key": list(key),
                "status": "regressed" if regressed else "ok",
                "baseline": base_val,
                "current": cur_val,
                "change": change,
            }
        )
        if regressed:
            failures.append(rows[-1])
    compared = [r for r in rows if "change" in r]
    ok = bool(compared) and not failures
    return {
        "metric": "rps" if absolute else "rps/calibration_rps",
        "max_regression": max_regression,
        "rows": rows,
        "compared": len(compared),
        "failures": len(failures),
        "ok": ok,
    }


def render(report: dict) -> str:
    lines = [
        f"serving-batch regression gate "
        f"(metric {report['metric']}, threshold -{report['max_regression']:.0%})"
    ]
    for row in report["rows"]:
        dataset, clients = row["key"]
        if "change" not in row:
            lines.append(f"  {dataset} @{clients:3d} clients: {row['status']}")
            continue
        lines.append(
            f"  {dataset} @{clients:3d} clients: "
            f"{row['baseline']:.4g} -> {row['current']:.4g} "
            f"({row['change']:+.1%}) [{row['status']}]"
        )
    if report["compared"] == 0:
        lines.append("  FAIL: no comparable levels between current and baseline")
    elif report["failures"]:
        lines.append(f"  FAIL: {report['failures']} level(s) regressed")
    else:
        lines.append(f"  ok: {report['compared']} level(s) within threshold")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--current", type=pathlib.Path, required=True,
        help="freshly measured bench_serving_batch JSON record",
    )
    ap.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"committed baseline record (default {DEFAULT_BASELINE})",
    )
    ap.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="fail when normalised throughput drops more than this fraction "
        f"(default {DEFAULT_MAX_REGRESSION})",
    )
    ap.add_argument(
        "--absolute", action="store_true",
        help="compare raw requests/sec instead of calibration-normalised",
    )
    args = ap.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    report = compare(
        current,
        baseline,
        max_regression=args.max_regression,
        absolute=args.absolute,
    )
    print(render(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
