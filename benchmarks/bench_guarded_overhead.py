"""Guarded-mode overhead benchmark — validated vs raw planned CBM products.

The reliability layer (``repro.reliability.GuardedKernel``) adds input
and output non-finite scans plus a try/except fallback wrapper around
every planned product.  This benchmark measures what that costs on the
GCN serving workload (the same 2-layer x many-forwards shape as
``bench_runtime_plan.py``) and records it in ``BENCH_PR2.json``; the
acceptance target is **<5% overhead** vs the raw planned path on the
COLLAB workload.

Run standalone::

    python benchmarks/bench_guarded_overhead.py            # full (COLLAB)
    python benchmarks/bench_guarded_overhead.py --smoke    # CI-sized (Cora)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.gnn.adjacency import CBMAdjacency, make_operator
from repro.gnn.gcn import two_layer_gcn_inference
from repro.graphs.datasets import load_dataset
from repro.graphs.laplacian import normalized_adjacency
from repro.reliability import GuardedAdjacency, GuardedKernel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR2.json"

# The acceptance target (<5%) is defined on the full COLLAB workload,
# where per-product time dominates the guard's fixed per-call cost.  The
# smoke config's products are ~10x smaller, so the same fixed cost is a
# larger fraction — its threshold is a loose CI regression tripwire, not
# the paper-facing number.
FULL = dict(dataset="COLLAB", alpha=4, p=64, hidden=64, classes=16, forwards=20, target=5.0)
SMOKE = dict(dataset="Cora", alpha=2, p=32, hidden=16, classes=4, forwards=5, target=15.0)


def _weights(rng, p, hidden, classes):
    w0 = (rng.random((p, hidden)) - 0.5).astype(np.float32) / np.sqrt(p)
    w1 = (rng.random((hidden, classes)) - 0.5).astype(np.float32) / np.sqrt(hidden)
    return w0, w1


def run_workload(cfg: dict, *, repeats: int | None = None) -> dict:
    """Time raw planned vs guarded repeated GCN inference; return the record."""
    cfg = dict(cfg)
    target = cfg.pop("target", 5.0)
    a = load_dataset(cfg["dataset"])
    rng = np.random.default_rng(7)
    x = rng.random((a.shape[0], cfg["p"])).astype(np.float32)
    w0, w1 = _weights(rng, cfg["p"], cfg["hidden"], cfg["classes"])

    raw = make_operator(a, "cbm", alpha=cfg["alpha"])
    assert isinstance(raw, CBMAdjacency)
    # Guard the SAME matrix (shared kernel plan) so the measured gap is
    # purely the validation + fallback machinery, not a different plan.
    guarded = GuardedAdjacency(
        GuardedKernel(raw.cbm, source=normalized_adjacency(a))
    )

    forwards = cfg["forwards"]
    repeats = repeats if repeats is not None else 12

    def forward(op):
        two_layer_gcn_inference(op, x, w0, w1)

    # Warm plan build, SciPy handles, and BLAS outside the timers.
    for _ in range(forwards):
        forward(raw)
        forward(guarded)

    # Time individual forwards, alternating raw/guarded call by call,
    # and keep the best sample per operator.  Scheduler noise on a
    # shared box is strictly additive, so min-of-many single-forward
    # samples converges on the true cost, while block timings drift by
    # more than the few-percent effect being measured (the guard adds
    # ~one finite-scan per product).
    raw_samples, guarded_samples = [], []
    for _ in range(max(3, repeats) * forwards):
        t0 = time.perf_counter()
        forward(raw)
        raw_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        forward(guarded)
        guarded_samples.append(time.perf_counter() - t0)
    t_raw = min(raw_samples) * forwards
    t_guarded = min(guarded_samples) * forwards

    overhead_pct = (t_guarded / t_raw - 1.0) * 100.0
    return {
        "benchmark": "guarded_overhead",
        "workload": {
            "shape": "2-layer GCN inference x repeated forwards",
            **cfg,
            "nodes": int(a.shape[0]),
            "nnz": int(a.nnz),
        },
        "raw_planned_s": t_raw,
        "guarded_s": t_guarded,
        "per_forward_raw_s": t_raw / forwards,
        "per_forward_guarded_s": t_guarded / forwards,
        "timing": "alternating single forwards, min per operator",
        "samples": len(raw_samples),
        "overhead_pct": overhead_pct,
        "target_overhead_pct": target,
        "within_target": bool(overhead_pct < target),
        "guard": guarded.guard.describe(),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Guarded-mode overhead benchmark — {w['dataset']} "
        f"(n={w['nodes']}, alpha={w['alpha']}, p={w['p']}, "
        f"{w['forwards']} forwards/burst)",
        f"  raw planned  {record['per_forward_raw_s'] * 1e3:8.3f} ms/forward",
        f"  guarded      {record['per_forward_guarded_s'] * 1e3:8.3f} ms/forward",
        f"  overhead: {record['overhead_pct']:+.2f}% "
        f"(target <{record['target_overhead_pct']:.0f}%, "
        f"{'OK' if record['within_target'] else 'OVER'})",
        f"  guard counters: {record['guard']['calls']} calls, "
        f"{record['guard']['fallbacks']} fallbacks",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<5 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    ap.add_argument("--repeats", type=int, default=None, help="timing repeats per burst")
    args = ap.parse_args(argv)

    cfg = dict(SMOKE if args.smoke else FULL)
    record = run_workload(cfg, repeats=args.repeats)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[written to {path}]")
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def test_raw_planned_gcn_forward(benchmark, rng):
    a = load_dataset("Cora")
    op = make_operator(a, "cbm", alpha=2)
    x = rng.random((a.shape[0], 32), dtype=np.float64).astype(np.float32)
    w0, w1 = _weights(np.random.default_rng(7), 32, 16, 4)
    two_layer_gcn_inference(op, x, w0, w1)  # build the plan outside the timer
    benchmark(lambda: two_layer_gcn_inference(op, x, w0, w1))


def test_guarded_gcn_forward(benchmark, rng):
    a = load_dataset("Cora")
    raw = make_operator(a, "cbm", alpha=2)
    op = GuardedAdjacency(GuardedKernel(raw.cbm, source=normalized_adjacency(a)))
    x = rng.random((a.shape[0], 32), dtype=np.float64).astype(np.float32)
    w0, w1 = _weights(np.random.default_rng(7), 32, 16, 4)
    two_layer_gcn_inference(op, x, w0, w1)
    benchmark(lambda: two_layer_gcn_inference(op, x, w0, w1))


def test_report_guarded_overhead(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("guarded_overhead", render(record))

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
