"""Durability overhead benchmark — atomic crash-safe saves vs plain writes.

PR 5's persistence tier routes every artifact save through
``repro.recovery.atomic_write`` (temp file + fsync + rename + directory
fsync) and versions artifact sets through the journaled
``GenerationStore``.  This benchmark measures what that durability
costs and records it in ``BENCH_PR5.json``:

* ``save_cbm`` (atomic + durable) vs a plain in-place
  ``np.savez_compressed`` of the same arrays — acceptance target
  **<10% overhead** on the full (COLLAB) workload;
* ``GenerationStore`` commit latency (payload fsync + CRC table +
  manifest marker) on top of the bare payload write;
* startup :meth:`GenerationStore.recover` sweep time over a populated
  store including deliberately torn debris.

Run standalone::

    python benchmarks/bench_recovery.py            # full (coPapersDBLP)
    python benchmarks/bench_recovery.py --smoke    # CI-sized (Cora)

or under pytest-benchmark like the other ``bench_*`` modules.
"""

import argparse
import json
import pathlib
import platform
import shutil
import tempfile
import time

import numpy as np

from repro.core.builder import build_cbm
from repro.core.io import _payload_arrays, load_cbm, save_cbm
from repro.graphs.datasets import load_dataset
from repro.recovery import GenerationStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_PR5.json"

# The acceptance target (<10%) is defined on the full coPapersDBLP
# workload, where compressing the large archive dominates the fixed
# per-save fsync+rename cost.  The smoke archive is tiny, so the same fixed cost
# is a much larger fraction — its threshold is a loose CI regression
# tripwire, not the paper-facing number.
FULL = dict(dataset="coPapersDBLP", alpha=4, samples=7, commits=5, gens=5, target=10.0)
SMOKE = dict(dataset="Cora", alpha=2, samples=3, commits=3, gens=3, target=75.0)


def _plain_save(path, cbm) -> None:
    """The non-atomic baseline: same bytes, no temp file, no fsync."""
    arrays = _payload_arrays(cbm)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def run_workload(cfg: dict) -> dict:
    """Time plain vs atomic CBM saves plus store commit/recovery; return the record."""
    cfg = dict(cfg)
    target = cfg.pop("target", 10.0)
    a = load_dataset(cfg["dataset"])
    cbm, _ = build_cbm(a, alpha=cfg["alpha"])

    samples = cfg["samples"]
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        plain_samples, atomic_samples = [], []
        # Warm the compressor and the page cache outside the timers.
        _plain_save(tmp / "warm-plain.npz", cbm)
        save_cbm(tmp / "warm-atomic.npz", cbm)
        # Alternate plain/atomic save call by call and keep the best
        # sample per writer: scheduler and disk-cache noise is additive,
        # so min-of-many isolates the true fixed durability cost.
        for i in range(samples):
            t0 = time.perf_counter()
            _plain_save(tmp / f"plain-{i}.npz", cbm)
            plain_samples.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            save_cbm(tmp / f"atomic-{i}.npz", cbm)
            atomic_samples.append(time.perf_counter() - t0)
        t_plain = min(plain_samples)
        t_atomic = min(atomic_samples)
        archive_bytes = (tmp / "atomic-0.npz").stat().st_size

        # Store commit latency: payload + CRC table + manifest marker.
        store = GenerationStore(tmp / "store")
        commit_samples = []
        for _ in range(cfg["commits"]):
            t0 = time.perf_counter()
            with store.begin(meta={"benchmark": "recovery"}) as txn:
                save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)
            commit_samples.append(time.perf_counter() - t0)
        t_commit = min(commit_samples)

        # Recovery sweep: committed history plus deliberately torn
        # debris (an uncommitted generation and a stray temp file).
        rstore = GenerationStore(tmp / "rstore")
        for _ in range(cfg["gens"]):
            with rstore.begin() as txn:
                save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)
        torn = rstore.root / f"gen-{cfg['gens'] + 1:06d}"
        torn.mkdir()
        (torn / "adjacency.npz.X.tmp-atomic").write_bytes(b"torn")
        (rstore.root / "stray.tmp-atomic").write_bytes(b"torn")
        t0 = time.perf_counter()
        report = rstore.recover()
        t_recover = time.perf_counter() - t0
        assert len(report.kept) == cfg["gens"], report.to_dict()
        load_cbm(rstore.generations()[-1].file("adjacency.npz"))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    overhead_pct = (t_atomic / t_plain - 1.0) * 100.0
    return {
        "benchmark": "recovery_overhead",
        "workload": {
            "shape": "CBM archive save + generation-store commit/recover",
            **cfg,
            "nodes": int(a.shape[0]),
            "nnz": int(a.nnz),
            "archive_bytes": int(archive_bytes),
        },
        "plain_save_s": t_plain,
        "atomic_save_s": t_atomic,
        "overhead_pct": overhead_pct,
        "target_overhead_pct": target,
        "within_target": bool(overhead_pct < target),
        "store_commit_s": t_commit,
        "recover_s": t_recover,
        "recover_report": report.to_dict(),
        "timing": "alternating single saves, min per writer",
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated_unix": time.time(),
    }


def render(record: dict) -> str:
    w = record["workload"]
    lines = [
        f"Durability overhead benchmark — {w['dataset']} "
        f"(n={w['nodes']}, alpha={w['alpha']}, "
        f"{w['archive_bytes'] / 1e6:.2f} MB archive)",
        f"  plain save   {record['plain_save_s'] * 1e3:8.3f} ms",
        f"  atomic save  {record['atomic_save_s'] * 1e3:8.3f} ms "
        "(temp + fsync + rename + dir fsync)",
        f"  overhead: {record['overhead_pct']:+.2f}% "
        f"(target <{record['target_overhead_pct']:.0f}%, "
        f"{'OK' if record['within_target'] else 'OVER'})",
        f"  store commit {record['store_commit_s'] * 1e3:8.3f} ms "
        "(payload fsync + CRC + manifest)",
        f"  recovery sweep {record['recover_s'] * 1e3:6.3f} ms over "
        f"{record['recover_report']['examined']} generation(s), "
        f"{len(record['recover_report']['quarantined'])} quarantined",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI-sized workload (<5 s)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"where to write the JSON record (default {DEFAULT_JSON})")
    args = ap.parse_args(argv)

    cfg = dict(SMOKE if args.smoke else FULL)
    record = run_workload(cfg)
    record["mode"] = "smoke" if args.smoke else "full"
    print(render(record))

    path = args.json or DEFAULT_JSON
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[written to {path}]")
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the other bench_* modules)
# ---------------------------------------------------------------------------

def _cora_cbm():
    a = load_dataset("Cora")
    cbm, _ = build_cbm(a, alpha=2)
    return cbm


def test_plain_cbm_save(benchmark, tmp_path):
    cbm = _cora_cbm()
    benchmark(lambda: _plain_save(tmp_path / "plain.npz", cbm))


def test_atomic_cbm_save(benchmark, tmp_path):
    cbm = _cora_cbm()
    benchmark(lambda: save_cbm(tmp_path / "atomic.npz", cbm))


def test_store_commit(benchmark, tmp_path):
    cbm = _cora_cbm()
    store = GenerationStore(tmp_path / "store")

    def commit():
        with store.begin() as txn:
            save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)

    benchmark(commit)


def test_report_recovery(benchmark):
    from conftest import write_report

    def run():
        record = run_workload(dict(SMOKE))
        write_report("recovery_overhead", render(record))

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
