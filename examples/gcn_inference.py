"""GCN inference with a CBM-compressed adjacency (paper Section VI-G).

Runs the paper's exact two-layer pipeline Â σ(Â X W⁰) W¹ with the
normalised adjacency held either as a weighted CSR matrix (baseline) or
as a CBM(DAD) factorisation, and compares results and timings.

Run:  python examples/gcn_inference.py [dataset]
"""

import sys

import numpy as np

from repro import load_dataset
from repro.gnn.adjacency import make_operator
from repro.gnn.gcn import two_layer_gcn_inference
from repro.utils.fmt import human_bytes, human_time
from repro.utils.timing import measure


def main(name: str = "COLLAB") -> None:
    a = load_dataset(name)
    n, p = a.shape[0], 500
    print(f"{name}: n={n}, feature width={p}")

    rng = np.random.default_rng(1)
    x = rng.random((n, p), dtype=np.float64).astype(np.float32)
    w0 = (rng.random((p, p), dtype=np.float64).astype(np.float32) - 0.5) / np.sqrt(p)
    w1 = (rng.random((p, p), dtype=np.float64).astype(np.float32) - 0.5) / np.sqrt(p)

    csr_op = make_operator(a, "csr")
    cbm_op = make_operator(a, "cbm", alpha=4)
    print(f"Â footprint: CSR {human_bytes(csr_op.memory_bytes())}"
          f" vs CBM {human_bytes(cbm_op.memory_bytes())}")

    y_csr = two_layer_gcn_inference(csr_op, x, w0, w1)
    y_cbm = two_layer_gcn_inference(cbm_op, x, w0, w1)
    err = np.max(np.abs(y_csr - y_cbm)) / max(np.max(np.abs(y_csr)), 1e-9)
    print(f"max relative deviation between formats: {err:.2e}")

    t_csr = measure(lambda: two_layer_gcn_inference(csr_op, x, w0, w1), max_repeats=10)
    t_cbm = measure(lambda: two_layer_gcn_inference(cbm_op, x, w0, w1), max_repeats=10)
    print(f"inference: CSR {human_time(t_csr.mean)} vs CBM {human_time(t_cbm.mean)}"
          f" -> speedup {t_csr.mean / t_cbm.mean:.2f}x")
    print("(the dense GEMMs are shared by both paths, so the SpMM speedup is"
          " diluted here exactly as the paper's Table IV reports)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "COLLAB")
