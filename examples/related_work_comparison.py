"""Compare CBM against the related-work formats on one graph.

Reproduces Section VII's qualitative claims quantitatively:

* STAF (Nishino et al. 2014) shares only common row suffixes — it
  compresses, but far less than CBM's whole-row deltas;
* Björklund–Lingas (2001) differential compression lacks the virtual
  node, so it can *lose* to CSR (no Property 1/2 guarantees).

Run:  python examples/related_work_comparison.py [dataset]
"""

import sys

import numpy as np

from repro import build_bl2001, build_cbm, load_dataset
from repro.core.opcount import csr_spmm_ops
from repro.sparse.ops import spmm
from repro.staf import build_staf
from repro.utils.fmt import format_table, human_bytes
from repro.utils.timing import measure


def main(name: str = "coPapersCiteseer") -> None:
    a = load_dataset(name)
    p = 256
    x = np.random.default_rng(0).random((a.shape[1], p), dtype=np.float64)
    x = x.astype(np.float32)
    t_csr = measure(lambda: spmm(a, x), max_repeats=10).mean
    ops_csr = csr_spmm_ops(a, p).total

    cbm, rep = build_cbm(a, alpha=0)
    staf = build_staf(a)
    bl, rep_bl = build_bl2001(a)

    rows = [
        [
            "CSR (baseline)",
            human_bytes(8 * a.nnz + 4 * (a.shape[0] + 1)),
            "1.00",
            f"{ops_csr:,}",
            "1.00",
            "1.00",
        ]
    ]
    for label, obj, ratio, ops, fn in (
        ("CBM (this paper)", cbm, rep.compression_ratio, cbm.scalar_ops(p).total,
         lambda: cbm.matmul(x)),
        ("STAF (Nishino'14)", staf, staf.compression_ratio(), staf.scalar_ops(p),
         lambda: staf.matmul(x)),
        ("BL (Björklund'01)", bl, rep_bl.compression_ratio, bl.scalar_ops(p).total,
         lambda: bl.matmul(x)),
    ):
        t = measure(fn, max_repeats=10).mean
        rows.append(
            [
                label,
                human_bytes(obj.memory_bytes()),
                f"{ratio:.2f}",
                f"{ops:,}",
                f"{ops_csr / max(ops, 1):.2f}",
                f"{t_csr / t:.2f}",
            ]
        )
    print(
        format_table(
            ["Format", "Memory", "Ratio", "SpMM ops", "Ops speedup", "Wall speedup"],
            rows,
            title=f"Related-work comparison on {name} (alpha=0, p={p})",
        )
    )
    print(
        "\nCBM's whole-row deltas dominate STAF's suffix sharing on clustered"
        "\ngraphs, and the virtual node keeps it from ever doing worse than"
        "\nCSR — the guarantee BL lacks."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "coPapersCiteseer")
