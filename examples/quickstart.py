"""Quickstart: compress a graph with CBM and multiply it with a dense matrix.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import build_cbm, load_dataset, paper_stats
from repro.sparse.ops import spmm
from repro.utils.fmt import human_bytes, human_time
from repro.utils.timing import measure


def main() -> None:
    # 1. Load a graph. The registry ships calibrated synthetic stand-ins
    #    for the paper's eight datasets; ca-HepPh is a co-authorship
    #    network whose overlapping collaborations compress well.
    name = "ca-HepPh"
    a = load_dataset(name)
    print(f"{name}: {a.shape[0]} nodes, {a.nnz} directed edges")
    print(f"paper original: {paper_stats(name).nodes} nodes, {paper_stats(name).edges} edges")

    # 2. Compress into the CBM format. alpha is the edge-pruning knob of
    #    the paper's Section V-C: 0 = maximum compression.
    cbm, report = build_cbm(a, alpha=4)
    print(f"\ncompressed in {human_time(report.seconds)}")
    print(f"  S_CSR = {human_bytes(8 * a.nnz + 4 * (a.shape[0] + 1))}")
    print(f"  S_CBM = {human_bytes(report.memory_bytes)}")
    print(f"  compression ratio = {report.compression_ratio:.2f}x")
    print(f"  compression tree: {report.tree_edges} edges, {report.roots} roots")

    # 3. Multiply with a dense feature matrix — same result as the CSR
    #    baseline, fewer scalar operations.
    rng = np.random.default_rng(0)
    x = rng.random((a.shape[1], 500), dtype=np.float64).astype(np.float32)
    y_cbm = cbm @ x
    y_csr = spmm(a, x)
    assert np.allclose(y_cbm, y_csr, rtol=1e-4, atol=1e-4)
    print("\nCBM product matches the CSR baseline (rtol 1e-4)")

    t_csr = measure(lambda: spmm(a, x), max_repeats=20)
    t_cbm = measure(lambda: cbm.matmul(x), max_repeats=20)
    print(f"CSR SpMM: {human_time(t_csr.mean)}   CBM SpMM: {human_time(t_cbm.mean)}")
    print(f"wall-clock speedup (1 core): {t_csr.mean / t_cbm.mean:.2f}x")

    from repro.core.opcount import csr_spmm_ops

    ops_csr = csr_spmm_ops(a, 500).total
    ops_cbm = cbm.scalar_ops(500).total
    print(f"scalar ops: CSR {ops_csr:,} vs CBM {ops_cbm:,} ({ops_csr / ops_cbm:.2f}x fewer)")


if __name__ == "__main__":
    main()
