"""Streaming mutations: patch a live CBM, watch drift, rebuild, hot-swap.

Walks the full streaming-tier lifecycle on one graph: apply edge
batches to a :class:`~repro.streaming.MutableAdjacency` (only the
affected delta rows are recomputed — the matrix stays exact), watch the
:class:`~repro.streaming.DriftTracker` price the compression decay,
serve through every mutation, then let the background rebuilder
recompress, commit a durable generation, and hot-swap the service.

Run:  python examples/streaming_mutations.py [dataset] [--out rebuilt.npz]

With ``--out`` the final rebuilt artifact is also saved standalone, so
it can be audited (``python -m repro.cli check artifact rebuilt.npz``).
"""

import argparse
import tempfile

import numpy as np

from repro import load_dataset
from repro.recovery import GenerationStore
from repro.serving import AdjacencySlot, InferenceService
from repro.sparse.ops import spmm
from repro.streaming import (
    BackgroundRebuilder,
    DriftPolicy,
    DriftTracker,
    EdgeBatch,
    MutableAdjacency,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("dataset", nargs="?", default="Cora")
    ap.add_argument("--batches", type=int, default=12, help="edge batches to apply")
    ap.add_argument("--edges", type=int, default=6, help="±edges per batch")
    ap.add_argument("--out", default=None,
                    help="also save the final rebuilt CBM archive here")
    args = ap.parse_args()

    # 1. Compress the graph and wrap it for mutation.  The tracker's
    #    policy decides when compression decay warrants a rebuild.
    a = load_dataset(args.dataset)
    print(f"{args.dataset}: {a.shape[0]} nodes, {a.nnz} directed edges")
    tracker = DriftTracker(DriftPolicy(max_drift=0.05, staleness_budget=64))
    mutable = MutableAdjacency.from_graph(a, tracker=tracker)

    # 2. Serve through the mutations: the service starts on the initial
    #    snapshot; each patch publishes a new one with zero downtime.
    version, cbm, source = mutable.snapshot()
    slot = AdjacencySlot(cbm, source, tracker=tracker)
    slot.graph_version = version
    rng = np.random.default_rng(7)
    x = rng.random((a.shape[0], 4), dtype=np.float64).astype(np.float32)

    with InferenceService(slot, workers=1) as service:
        print(f"\napplying {args.batches} batches of ±{args.edges} edges:")
        for j in range(args.batches):
            _, _, src = mutable.snapshot()
            batch = EdgeBatch.random(
                src, inserts=args.edges, deletes=args.edges, seed=j
            )
            report = mutable.apply(batch)
            from repro.streaming import publish_snapshot

            publish_snapshot(mutable, service)
            y = service.submit(x).result(30.0)
            _, live_cbm, live_src = mutable.snapshot()
            assert np.array_equal(y, live_cbm.matmul(x))
            assert np.allclose(y, spmm(live_src, x), rtol=1e-4, atol=1e-4)
            print(
                f"  v{report.version:2d}: +{report.inserted}/-{report.deleted} edges, "
                f"{report.rows_patched} delta rows respliced in "
                f"{report.seconds * 1e3:.1f} ms — drift {tracker.drift() * 100:5.2f}%, "
                f"staleness {tracker.staleness()}"
            )

        # 3. The patched matrix is exact but drifted; a background
        #    rebuild recompresses it, commits the fresh build durably,
        #    and hot-swaps the serving slot.
        print(f"\nrebuild trigger fired: {tracker.should_rebuild()}")
        with tempfile.TemporaryDirectory(prefix="streaming-example-") as tmp:
            store = GenerationStore(f"{tmp}/store", retain=3)
            rebuilder = BackgroundRebuilder(mutable, store, service)
            report = rebuilder.rebuild_once()
            print(
                f"rebuilt v{report.built_version} in {report.build_seconds * 1e3:.0f} ms, "
                f"committed generation {report.store_generation} "
                f"({report.commit_seconds * 1e3:.0f} ms), "
                f"published with {report.replayed} replayed batch(es)"
            )
            snap = tracker.snapshot()
            print(f"drift after rebuild: {snap['drift'] * 100:.2f}% "
                  f"(staleness {snap['staleness']})")

            y = service.submit(x).result(30.0)
            _, live_cbm, live_src = mutable.snapshot()
            assert np.array_equal(y, live_cbm.matmul(x))
            print("served result matches the rebuilt CBM bitwise")

            if args.out:
                import shutil

                gen = store.latest()
                shutil.copyfile(gen.file("adjacency.npz"), args.out)
                print(f"rebuilt artifact saved to {args.out} "
                      "(audit: python -m repro.cli check artifact "
                      f"{args.out})")


if __name__ == "__main__":
    main()
