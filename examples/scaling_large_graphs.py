"""Compressing graphs too large for the global builder (Section VIII).

The paper reports the global construction exploding to 92 GiB on Reddit
because the ``A @ Aᵀ`` overlap computation densifies.  This example shows
the production decision procedure implemented here:

1. estimate the overlap intermediate with
   :func:`repro.core.verify.estimate_candidate_memory`;
2. if it exceeds budget, use the future-work *clustered* builder, which
   only forms overlaps inside row-similarity clusters;
3. quantify what the bounded build gives up (compression) and gains
   (parallel branches, bounded memory).

Run:  python examples/scaling_large_graphs.py
"""

from repro import build_cbm, build_clustered, load_dataset
from repro.core.verify import estimate_candidate_memory
from repro.utils.fmt import format_table, human_bytes


def main() -> None:
    name = "ogbn-proteins"  # densest stand-in: worst A·Aᵀ blow-up
    a = load_dataset(name)
    estimate = estimate_candidate_memory(a)
    print(f"{name}: {a.shape[0]} nodes, {a.nnz} edges")
    print(f"estimated A·Aᵀ intermediate: {human_bytes(estimate)}")
    print(f"(CSR itself is only {human_bytes(a.memory_bytes())} — the paper's")
    print(" Reddit case hit 92 GiB from 0.9 GiB of CSR this way)\n")

    rows = []
    cbm, rep = build_cbm(a, alpha=0)
    rows.append(
        ["global", f"{rep.seconds:.2f}", f"{rep.compression_ratio:.2f}", rep.roots,
         human_bytes(16 * rep.candidate_edges)]
    )
    for size in (2048, 512, 128):
        cbm_c, rep_c = build_clustered(a, cluster_size=size)
        rows.append(
            [
                f"clustered[{size}]",
                f"{rep_c.seconds:.2f}",
                f"{rep_c.compression_ratio:.2f}",
                rep_c.roots,
                human_bytes(16 * rep_c.candidate_edges),
            ]
        )
    print(
        format_table(
            ["Builder", "Time[s]", "Ratio", "Branches(roots)", "CandidateMem"],
            rows,
            title="Global vs memory-bounded clustered construction",
        )
    )
    print(
        "\nSmaller clusters bound the overlap memory and add parallel branches;"
        "\nthe compression cost is the price of never forming the full A·Aᵀ."
    )


if __name__ == "__main__":
    main()
