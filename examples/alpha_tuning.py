"""Tune the edge-pruning threshold alpha for a target core count (Fig. 2).

For one dataset, sweeps alpha and reports: compression ratio, measured
1-core wall-clock speedup, and the machine model's predicted 1- and
16-core speedups at paper scale — the trade-off curve of Figure 2.

Run:  python examples/alpha_tuning.py [dataset]
"""

import sys

import numpy as np

from repro import build_cbm, load_dataset, paper_stats
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm
from repro.sparse.ops import spmm
from repro.utils.fmt import format_table
from repro.utils.timing import measure


def main(name: str = "ca-HepPh") -> None:
    a = load_dataset(name)
    ps = paper_stats(name)
    s_nnz = ps.edges / a.nnz
    s_rows = ps.nodes / a.shape[0]
    p = 500
    x = np.random.default_rng(0).random((a.shape[1], p), dtype=np.float64).astype(np.float32)
    t_csr = measure(lambda: spmm(a, x), max_repeats=15).mean
    c1 = predict_csr_spmm(a, p, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    c16 = predict_csr_spmm(a, p, cores=16, scale_nnz=s_nnz, scale_rows=s_rows).total_s

    rows = []
    for alpha in (0, 1, 2, 4, 8, 16, 32):
        cbm, rep = build_cbm(a, alpha=alpha)
        t_cbm = measure(lambda: cbm.matmul(x), max_repeats=15).mean
        b1 = predict_cbm_spmm(cbm, p, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
        b16 = predict_cbm_spmm(cbm, p, cores=16, scale_nnz=s_nnz, scale_rows=s_rows).total_s
        rows.append(
            [
                alpha,
                f"{rep.compression_ratio:.2f}",
                f"{t_csr / t_cbm:.2f}",
                f"{c1 / b1:.2f}",
                f"{c16 / b16:.2f}",
                rep.roots,
                cbm.tree.stats()["max_depth"],
            ]
        )
    print(
        format_table(
            ["Alpha", "Ratio", "WallSeq", "ModelSeq", "ModelPar16", "Roots", "MaxDepth"],
            rows,
            title=f"alpha sweep for {name} (speedups vs CSR baseline)",
        )
    )
    best_seq = max(rows, key=lambda r: float(r[3]))[0]
    best_par = max(rows, key=lambda r: float(r[4]))[0]
    print(f"\nbest alpha: {best_seq} (sequential), {best_par} (16 cores)")
    print("larger alpha trades compression for shallower, bushier trees —")
    print("exactly the parallelism knob the paper describes in Section V-C.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ca-HepPh")
