"""Analyse CBM compressibility across graph families (Tables II & V).

Sweeps every registered dataset, reporting compression ratio, clustering
coefficient, and the alpha trade-off — a compact reproduction of the
paper's compression narrative.

Run:  python examples/compression_analysis.py
"""

from repro import build_cbm, list_datasets, load_dataset, paper_stats
from repro.graphs.stats import average_clustering_coefficient
from repro.utils.fmt import format_table


def main() -> None:
    rows = []
    for name in list_datasets():
        a = load_dataset(name)
        cc = average_clustering_coefficient(a)
        ratios = {}
        branches = {}
        for alpha in (0, 8, 32):
            cbm, rep = build_cbm(a, alpha=alpha)
            ratios[alpha] = rep.compression_ratio
            branches[alpha] = rep.roots
        ps = paper_stats(name)
        rows.append(
            [
                name,
                f"{a.nnz / a.shape[0]:.1f}",
                f"{cc:.2f}",
                f"{ratios[0]:.2f}",
                f"{ps.compression_ratio_a0:.2f}",
                f"{ratios[8]:.2f}",
                f"{ratios[32]:.2f}",
                branches[0],
                branches[32],
            ]
        )
    rows.sort(key=lambda r: float(r[3]))
    print(
        format_table(
            [
                "Graph",
                "AvgDeg",
                "Clustering",
                "Ratio(a=0)",
                "Paper(a=0)",
                "Ratio(a=8)",
                "Ratio(a=32)",
                "Roots(a=0)",
                "Roots(a=32)",
            ],
            rows,
            title="CBM compressibility by family (sorted by ratio)",
        )
    )
    print(
        "\nTakeaways (matching the paper): clique-projection families"
        " (co-papers, COLLAB) compress 6-11x; low-degree citation graphs"
        " barely compress; raising alpha trades compression for more"
        " virtual-root branches (parallelism)."
    )


if __name__ == "__main__":
    main()
