"""Train a GCN for node classification on a CBM-compressed graph.

The paper's future-work section targets the training stage: every epoch
multiplies Â with activations (forward) and gradients (backward), and the
symmetric Â serves both directions from one CBM matrix.

Run:  python examples/node_classification_training.py
"""

from repro.gnn.adjacency import make_operator
from repro.gnn.data import synthetic_node_classification
from repro.gnn.gcn import GCN
from repro.gnn.train import accuracy, train_gcn
from repro.utils.timing import Timer


def main() -> None:
    task = synthetic_node_classification(
        1200, classes=4, feature_dim=32, feature_noise=2.5, seed=7
    )
    print(
        f"planted-partition task: {task.n} nodes, {task.num_classes} classes, "
        f"{int(task.train_mask.sum())} labelled for training"
    )

    results = {}
    for kind in ("csr", "cbm"):
        op = make_operator(task.adjacency, kind, alpha=2)
        model = GCN([32, 32, task.num_classes], dropout=0.2, seed=0, requires_grad=True)
        with Timer() as t:
            history = train_gcn(
                model,
                op,
                task.features,
                task.labels,
                train_mask=task.train_mask,
                val_mask=task.val_mask,
                epochs=100,
                lr=0.02,
            )
        logits = model.forward(op, task.features)
        test_acc = accuracy(logits, task.labels, task.test_mask)
        results[kind] = (t.elapsed, history.final_loss, test_acc)
        print(
            f"[{kind}] 100 epochs in {t.elapsed:.2f}s | final loss "
            f"{history.final_loss:.4f} | test accuracy {test_acc:.3f}"
        )

    csr_t, _, csr_acc = results["csr"]
    cbm_t, _, cbm_acc = results["cbm"]
    print(f"\ntraining speedup with CBM: {csr_t / cbm_t:.2f}x")
    print(f"accuracy difference: {abs(csr_acc - cbm_acc):.4f} (formats are numerically equivalent)")


if __name__ == "__main__":
    main()
