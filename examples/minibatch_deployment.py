"""Mini-batch GNN deployment on CBM-compressed receptive fields.

Serving predictions for a handful of nodes doesn't need the full graph:
each batch materialises its k-hop receptive field, compresses that small
subgraph into CBM on the fly, and runs the model.  This example checks
the batched path against full-batch inference and reports the receptive
field / compression statistics per batch.

Run:  python examples/minibatch_deployment.py
"""

import numpy as np

from repro import build_cbm, load_dataset
from repro.gnn.adjacency import make_operator
from repro.gnn.gcn import GCN
from repro.gnn.sampling import induced_subgraph, k_hop_neighborhood, minibatch_inference
from repro.utils.timing import Timer


def main() -> None:
    a = load_dataset("ca-HepPh")
    n = a.shape[0]
    rng = np.random.default_rng(0)
    x = rng.random((n, 64), dtype=np.float64).astype(np.float32)
    model = GCN([64, 32, 4], seed=1)

    targets = rng.choice(n, size=96, replace=False)

    full = model(make_operator(a, "csr"), x)

    with Timer() as t:
        batched = minibatch_inference(
            a, x, model, targets, hops=2, batch_size=32, kind="cbm", alpha=2
        )
    err = np.max(np.abs(batched - full[targets]))
    print(f"batched CBM inference for {len(targets)} targets in {t.elapsed:.2f}s")
    print(f"max deviation vs full-batch: {err:.2e} (haloed 2-hop fields are exact)")

    # Per-batch anatomy: field size and its compressibility.
    print("\nper-batch receptive fields:")
    for lo in range(0, len(targets), 32):
        batch = targets[lo : lo + 32]
        field = k_hop_neighborhood(a, batch, 2)
        sub, _ = induced_subgraph(a, field)
        _, rep = build_cbm(sub, alpha=2)
        print(
            f"  batch {lo // 32}: {len(batch)} targets -> {len(field)} field nodes, "
            f"{sub.nnz} edges, CBM ratio {rep.compression_ratio:.2f}x "
            f"(built in {rep.seconds * 1e3:.0f} ms)"
        )


if __name__ == "__main__":
    main()
